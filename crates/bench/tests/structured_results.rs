//! Integration tests for the structured-results layer and the
//! golden-snapshot harness: JSON documents must be byte-identical for
//! any worker count, the committed quick-mode goldens must verify
//! in-process, and the `expt` CLI must speak every format.

use hydra_bench::golden::{check, DiffOptions, GoldenError};
use hydra_bench::results::{experiment_doc, sink_for, suite_doc, write_out_dir, Format};
use hydra_bench::{find, run_experiment, RunSpec};
use hydra_stats::Json;
use std::path::PathBuf;
use std::process::Command;

fn tiny() -> RunSpec {
    RunSpec::builder()
        .seed(7)
        .fast_forward(200)
        .horizon(2_000)
        .build()
}

/// The committed goldens at the repository root.
fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../goldens")
}

#[test]
fn json_document_is_byte_identical_for_any_worker_count() {
    let rs = tiny();
    let e = find("fig-repair").expect("registered");
    let serial = experiment_doc(e.as_ref(), &rs, &run_experiment(e.as_ref(), &rs, 1));
    let parallel = experiment_doc(e.as_ref(), &rs, &run_experiment(e.as_ref(), &rs, 8));
    assert_eq!(serial.pretty(), parallel.pretty());
}

#[test]
fn suite_document_round_trips_through_the_parser() {
    let rs = tiny();
    let finished: Vec<_> = ["table1", "fig-analytical"]
        .iter()
        .map(|name| {
            let e = find(name).expect("registered");
            let run = run_experiment(e.as_ref(), &rs, 2);
            (e.name().to_string(), e.title().to_string(), run)
        })
        .collect();
    let doc = suite_doc(&rs, &finished);
    assert_eq!(Json::parse(&doc.pretty()).expect("parses"), doc);
    let experiments = doc.get("experiments").and_then(Json::as_arr).unwrap();
    assert_eq!(experiments.len(), 2);
}

#[test]
fn committed_goldens_verify_at_quick_sizing() {
    // The full suite takes minutes; spot-check one zero-job experiment,
    // one trace-model experiment, and one real cycle-level experiment
    // against the goldens actually committed in the repository. CI runs
    // `expt --check-golden` over everything.
    let rs = RunSpec::quick();
    let opts = DiffOptions::default();
    for name in ["table1", "fig-analytical", "table2"] {
        let e = find(name).expect("registered");
        if let Err(err) = check(e.as_ref(), &rs, 4, &goldens_dir(), &opts) {
            panic!("golden check failed for {name}: {err}");
        }
    }
}

#[test]
fn tampered_golden_is_detected() {
    let rs = RunSpec::quick();
    let e = find("table1").expect("registered");
    // Copy the committed golden, tamper with one result field.
    let golden = std::fs::read_to_string(goldens_dir().join("table1.json")).unwrap();
    let tampered = golden.replacen("64 entries", "65 entries", 1);
    assert_ne!(golden, tampered, "fixture must actually change the doc");
    let dir = std::env::temp_dir().join("hydra-tampered-golden");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("table1.json"), tampered).unwrap();
    match check(e.as_ref(), &rs, 1, &dir, &DiffOptions::default()) {
        Err(GoldenError::Mismatched(ms)) => {
            assert!(
                ms.iter().any(|m| m.path.starts_with("/table/rows")),
                "{ms:?}"
            );
        }
        other => panic!("expected Mismatched, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_sink_consumes_a_full_run() {
    let rs = tiny();
    let e = find("fig-analytical").expect("registered");
    let run = run_experiment(e.as_ref(), &rs, 2);
    for format in [Format::Table, Format::Json, Format::Csv] {
        let mut sink = sink_for(format);
        let mut out = Vec::new();
        sink.emit(&mut out, e.as_ref(), &rs, &run).unwrap();
        sink.finish(&mut out, &rs).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("wrong-path"), "{format:?}: {text}");
    }
}

#[test]
fn out_dir_gets_result_docs_and_bench_artifact() {
    let rs = tiny();
    let e = find("table1").expect("registered");
    let run = run_experiment(e.as_ref(), &rs, 1);
    let finished = vec![("table1".to_string(), e.title().to_string(), run)];
    let dir = std::env::temp_dir().join("hydra-out-dir-test");
    let _ = std::fs::remove_dir_all(&dir);
    write_out_dir(&dir, &rs, &finished).unwrap();
    let doc = Json::parse(&std::fs::read_to_string(dir.join("table1.json")).unwrap()).unwrap();
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("table1"));
    let bench =
        Json::parse(&std::fs::read_to_string(dir.join("BENCH_expt.json")).unwrap()).unwrap();
    assert!(bench.get("total").and_then(|t| t.get("wall_ms")).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

// --- CLI-level tests (dev-profile binary: stick to zero-job experiments) ---

#[test]
fn cli_format_json_emits_a_parsable_schema_versioned_document() {
    let out = Command::new(env!("CARGO_BIN_EXE_expt"))
        .args(["table1", "--format", "json"])
        .env("HYDRA_EXPT_MODE", "quick")
        .output()
        .expect("expt binary runs");
    assert!(out.status.success());
    let doc = Json::parse(std::str::from_utf8(&out.stdout).unwrap()).expect("stdout is JSON");
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_num),
        Some(hydra_bench::SCHEMA_VERSION as f64)
    );
}

#[test]
fn cli_format_csv_emits_sections() {
    let out = Command::new(env!("CARGO_BIN_EXE_expt"))
        .args(["table1", "--format", "csv"])
        .env("HYDRA_EXPT_MODE", "quick")
        .output()
        .expect("expt binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("# table1:"), "{text}");
    assert!(text.contains("parameter,value"));
}

#[test]
fn cli_rejects_unknown_format() {
    let out = Command::new(env!("CARGO_BIN_EXE_expt"))
        .args(["table1", "--format", "yaml"])
        .output()
        .expect("expt binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("yaml"));
}

#[test]
fn cli_check_golden_passes_for_committed_table1() {
    let out = Command::new(env!("CARGO_BIN_EXE_expt"))
        .args(["--check-golden", "table1", "--goldens"])
        .arg(goldens_dir())
        // Must be ignored: golden checks always run the quick spec.
        .env("HYDRA_EXPT_MODE", "full")
        .output()
        .expect("expt binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("golden table1"), "{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");
}

#[test]
fn cli_check_golden_fails_cleanly_without_goldens() {
    let dir = std::env::temp_dir().join("hydra-no-goldens-here");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_expt"))
        .args(["--check-golden", "table1", "--goldens"])
        .arg(&dir)
        .output()
        .expect("expt binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("no golden"));
    let _ = std::fs::remove_dir_all(&dir);
}
