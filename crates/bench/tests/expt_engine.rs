//! Integration tests for the parallel experiment engine and the `expt`
//! CLI: a parallel run must render byte-identical tables to a serial
//! run, and `expt --list` must cover the whole registry.

use hydra_bench::{find, registry, run_experiment, RunSpec};
use std::process::Command;

fn tiny() -> RunSpec {
    RunSpec::builder()
        .seed(7)
        .fast_forward(200)
        .horizon(2_000)
        .build()
}

#[test]
fn fig_repair_parallel_is_byte_identical_to_serial() {
    let rs = tiny();
    let e = find("fig-repair").expect("fig-repair is registered");
    let serial = run_experiment(e.as_ref(), &rs, 1).table.render();
    let parallel = run_experiment(e.as_ref(), &rs, 8).table.render();
    assert_eq!(serial, parallel);
    // Sanity: the table actually carries simulation results.
    assert!(serial.contains("vortex"));
}

#[test]
fn analytical_parallel_is_byte_identical_to_serial() {
    // The trace-model experiment exercises the Replay job kind.
    let rs = tiny();
    let e = find("fig-analytical").expect("fig-analytical is registered");
    let serial = run_experiment(e.as_ref(), &rs, 1).table.render();
    let parallel = run_experiment(e.as_ref(), &rs, 4).table.render();
    assert_eq!(serial, parallel);
}

#[test]
fn expt_list_covers_every_registered_experiment() {
    let out = Command::new(env!("CARGO_BIN_EXE_expt"))
        .arg("--list")
        .output()
        .expect("expt binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8 listing");
    for e in registry() {
        assert!(
            text.contains(e.name()),
            "expt --list is missing {:?}",
            e.name()
        );
    }
}

#[test]
fn expt_rejects_unknown_names_and_bad_flags() {
    let unknown = Command::new(env!("CARGO_BIN_EXE_expt"))
        .arg("no-such-experiment")
        .output()
        .expect("expt binary runs");
    assert!(!unknown.status.success());
    let err = String::from_utf8(unknown.stderr).expect("utf-8 error");
    assert!(err.contains("no-such-experiment"));

    let bad_jobs = Command::new(env!("CARGO_BIN_EXE_expt"))
        .args(["table1", "--jobs", "0"])
        .output()
        .expect("expt binary runs");
    assert!(!bad_jobs.status.success());
}

#[test]
fn expt_runs_table1_quickly() {
    // table1 is a configuration dump (zero jobs), so this exercises the
    // full CLI path without a long simulation.
    let out = Command::new(env!("CARGO_BIN_EXE_expt"))
        .args(["table1", "--jobs", "2"])
        .env("HYDRA_EXPT_MODE", "quick")
        .output()
        .expect("expt binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8 table");
    assert!(text.contains("baseline machine model"));
}
