//! Byte-level differential test against the committed goldens.
//!
//! `expt --check-golden` diffs *structurally* (with a timing tolerance
//! it never needs for result documents); this test pins the stronger
//! contract the golden workflow actually relies on: a fresh quick-mode
//! run serializes to **exactly** the bytes committed under `goldens/`.
//! Any rewrite of the core's hot loop must keep this equality — same
//! fetch order, same squash order, same counters, same rendering.
//!
//! Only the cheap experiments run here (full coverage is CI's golden
//! job); together they still cross every output layer: a parameter
//! table, the functional-profile path, and the trace-replay path.

use hydra_bench::results::experiment_doc;
use hydra_bench::{find, run_experiment, RunSpec};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../goldens")
        .join(format!("{name}.json"))
}

fn assert_matches_golden_bytes(name: &str) {
    // Goldens are generated at the quick sizing; workers must not matter.
    let rs = RunSpec::quick();
    let e = find(name).expect("experiment registered");
    let run = run_experiment(e.as_ref(), &rs, 2);
    let fresh = experiment_doc(e.as_ref(), &rs, &run).pretty();
    let committed = std::fs::read_to_string(golden_path(name))
        .unwrap_or_else(|io| panic!("reading golden for {name}: {io}"));
    assert_eq!(
        fresh, committed,
        "{name}: fresh result document is not byte-identical to goldens/{name}.json"
    );
}

#[test]
fn table1_is_byte_identical_to_golden() {
    assert_matches_golden_bytes("table1");
}

#[test]
fn table2_is_byte_identical_to_golden() {
    assert_matches_golden_bytes("table2");
}

#[test]
fn fig_analytical_is_byte_identical_to_golden() {
    assert_matches_golden_bytes("fig-analytical");
}
