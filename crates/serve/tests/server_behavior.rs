//! End-to-end behavior of the serve substrate over real sockets, using
//! gated stub services so concurrency is forced, not hoped for: compute
//! blocks on a condvar the test controls, which guarantees requests
//! overlap (coalescing) or pile up (backpressure) exactly when the
//! assertions run.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hydra_serve::{serve, Config, Service, ServiceError};

/// A parsed HTTP response: status, lowercased headers, body.
struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

/// One round-trip: connect, send, read to EOF (`Connection: close`
/// frames every reply), parse.
fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Reply {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: std::net::SocketAddr, path: &str) -> Reply {
    roundtrip(addr, &format!("GET {path} HTTP/1.1\r\n\r\n"))
}

fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> Reply {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("send");
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("read reply");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

/// A service whose compute blocks until the test opens its gate, and
/// counts how often compute ran.
struct Gated {
    open: Mutex<bool>,
    cv: Condvar,
    entered: Mutex<u64>,
    entered_cv: Condvar,
}

impl Gated {
    fn new() -> Arc<Self> {
        Arc::new(Gated {
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: Mutex::new(0),
            entered_cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Blocks until `n` computations have *started* (are inside the
    /// gate), so the test knows the worker is occupied.
    fn await_entered(&self, n: u64) {
        let mut entered = self.entered.lock().unwrap();
        while *entered < n {
            let (guard, timeout) = self
                .entered_cv
                .wait_timeout(entered, Duration::from_secs(5))
                .unwrap();
            entered = guard;
            assert!(!timeout.timed_out(), "compute never started");
        }
    }
}

/// Newtype so the foreign `Service` trait can be implemented (orphan
/// rule) while the test keeps its own handle on the gate.
struct GatedService(Arc<Gated>);

impl Service for GatedService {
    fn key(&self, body: &str) -> Result<String, ServiceError> {
        Ok(body.to_string())
    }

    fn compute(&self, body: &str) -> Result<String, ServiceError> {
        let gate = &self.0;
        {
            let mut entered = gate.entered.lock().unwrap();
            *entered += 1;
            gate.entered_cv.notify_all();
        }
        let mut open = gate.open.lock().unwrap();
        while !*open {
            let (guard, timeout) = gate.cv.wait_timeout(open, Duration::from_secs(5)).unwrap();
            open = guard;
            assert!(!timeout.timed_out(), "test never opened the gate");
        }
        Ok(format!("computed:{body}"))
    }
}

fn small_config() -> Config {
    Config {
        handler_threads: 8,
        workers: 1,
        queue_depth: 8,
        cache_capacity: 16,
        ..Config::default()
    }
}

#[test]
fn identical_concurrent_requests_compute_once_with_identical_bodies() {
    let gate = Gated::new();
    let handle = serve(
        "127.0.0.1:0",
        Arc::new(GatedService(Arc::clone(&gate))),
        small_config(),
    )
    .unwrap();
    let addr = handle.addr();

    // Leader in flight and parked inside compute...
    let clients: Vec<_> = (0..6)
        .map(|_| thread::spawn(move || post(addr, "/v1/experiments", "same-request")))
        .collect();
    gate.await_entered(1);
    // ...while the rest of the pack arrives and coalesces behind it.
    thread::sleep(Duration::from_millis(100));
    gate.open();

    let replies: Vec<Reply> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for reply in &replies {
        assert_eq!(reply.status, 200);
        assert_eq!(
            reply.body, "computed:same-request",
            "every waiter gets the one computed body, byte-identical"
        );
    }
    assert_eq!(
        handle.computed_count(),
        1,
        "six identical concurrent requests must share one computation"
    );
    // Every reply declares how it was satisfied; at most one computed.
    let misses = replies
        .iter()
        .filter(|r| r.headers.get("x-cache").map(String::as_str) == Some("miss"))
        .count();
    assert_eq!(misses, 1);
    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let gate = Gated::new();
    let config = Config {
        handler_threads: 8,
        workers: 1,
        queue_depth: 1,
        cache_capacity: 16,
        retry_after_secs: 7,
        ..Config::default()
    };
    let handle = serve(
        "127.0.0.1:0",
        Arc::new(GatedService(Arc::clone(&gate))),
        config,
    )
    .unwrap();
    let addr = handle.addr();

    // "a" occupies the only worker (parked in the gate), "b" fills the
    // one-deep queue, so "c" must be shed — memory use stays bounded no
    // matter how many more distinct requests arrive.
    let a = thread::spawn(move || post(addr, "/v1/experiments", "a"));
    gate.await_entered(1);
    let b = thread::spawn(move || post(addr, "/v1/experiments", "b"));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let queued = handle
            .metrics_json()
            .get("engine")
            .and_then(|e| e.get("queue_len"))
            .and_then(hydra_stats::Json::as_num);
        if queued == Some(1.0) {
            break;
        }
        assert!(Instant::now() < deadline, "b never reached the queue");
        thread::sleep(Duration::from_millis(5));
    }

    let c = post(addr, "/v1/experiments", "c");
    assert_eq!(c.status, 503);
    assert_eq!(
        c.headers.get("retry-after").map(String::as_str),
        Some("7"),
        "shed responses tell the client when to come back"
    );

    gate.open();
    assert_eq!(a.join().unwrap().status, 200);
    assert_eq!(b.join().unwrap().status, 200, "queued work still completes");
    handle.shutdown();
}

#[test]
fn timed_out_requests_get_504_but_the_result_is_still_cached() {
    let gate = Gated::new();
    let config = Config {
        timeout_ms: 50,
        ..small_config()
    };
    let handle = serve(
        "127.0.0.1:0",
        Arc::new(GatedService(Arc::clone(&gate))),
        config,
    )
    .unwrap();
    let addr = handle.addr();

    let slow = post(addr, "/v1/experiments", "slow");
    assert_eq!(slow.status, 504, "the gate outlasts the 50 ms budget");

    // The abandoned computation still runs to completion and fills the
    // cache; a retry is a hit.
    gate.open();
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.computed_count() < 1 {
        assert!(Instant::now() < deadline, "computation never finished");
        thread::sleep(Duration::from_millis(5));
    }
    let retry = post(addr, "/v1/experiments", "slow");
    assert_eq!(retry.status, 200);
    assert_eq!(
        retry.headers.get("x-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(retry.body, "computed:slow");
    assert_eq!(handle.computed_count(), 1);
    handle.shutdown();
}

/// A service with per-body cost and failure modes, for the admission
/// and error paths.
struct Quirky;

impl Service for Quirky {
    fn key(&self, body: &str) -> Result<String, ServiceError> {
        if body == "unparseable" {
            return Err(ServiceError::new(400, "not a request"));
        }
        Ok(body.to_string())
    }

    fn cost(&self, body: &str) -> Result<u64, ServiceError> {
        Ok(body.len() as u64)
    }

    fn compute(&self, body: &str) -> Result<String, ServiceError> {
        if body == "boom" {
            return Err(ServiceError::new(500, "compute exploded"));
        }
        Ok(format!("ok:{body}"))
    }
}

#[test]
fn over_budget_requests_are_refused_before_queueing() {
    let config = Config {
        job_budget: 5,
        ..small_config()
    };
    let handle = serve("127.0.0.1:0", Arc::new(Quirky), config).unwrap();
    let addr = handle.addr();

    let over = post(addr, "/v1/experiments", "0123456789");
    assert_eq!(over.status, 413);
    assert!(over.body.contains("budget"), "body: {}", over.body);
    assert_eq!(handle.computed_count(), 0, "never queued, never computed");

    let under = post(addr, "/v1/experiments", "tiny");
    assert_eq!(under.status, 200);
    assert_eq!(under.body, "ok:tiny");
    handle.shutdown();
}

#[test]
fn service_errors_map_to_their_statuses_and_are_not_cached() {
    let handle = serve("127.0.0.1:0", Arc::new(Quirky), small_config()).unwrap();
    let addr = handle.addr();

    assert_eq!(post(addr, "/v1/experiments", "unparseable").status, 400);

    let boom = post(addr, "/v1/experiments", "boom");
    assert_eq!(boom.status, 500);
    assert!(boom.body.contains("compute exploded"));
    let again = post(addr, "/v1/experiments", "boom");
    assert_eq!(again.status, 500);
    assert_eq!(
        handle.computed_count(),
        2,
        "failures are recomputed, not served from the cache"
    );
    handle.shutdown();
}

#[test]
fn repeat_requests_hit_the_cache_byte_identically() {
    let handle = serve("127.0.0.1:0", Arc::new(Quirky), small_config()).unwrap();
    let addr = handle.addr();

    let cold = post(addr, "/v1/experiments", "req");
    assert_eq!(cold.status, 200);
    assert_eq!(
        cold.headers.get("x-cache").map(String::as_str),
        Some("miss")
    );
    let warm = post(addr, "/v1/experiments", "req");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.headers.get("x-cache").map(String::as_str), Some("hit"));
    assert_eq!(
        warm.body, cold.body,
        "hit must be byte-identical to the cold compute"
    );
    assert_eq!(handle.computed_count(), 1);
    handle.shutdown();
}

#[test]
fn healthz_metrics_and_unknown_routes() {
    let handle = serve("127.0.0.1:0", Arc::new(Quirky), small_config()).unwrap();
    let addr = handle.addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    let _ = post(addr, "/v1/experiments", "warm");
    let _ = post(addr, "/v1/experiments", "warm");
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    let doc = hydra_stats::Json::parse(&metrics.body).expect("metrics is valid JSON");
    let hits = doc
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(hydra_stats::Json::as_num);
    assert_eq!(hits, Some(1.0));

    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(
        get(addr, "/v1/experiments").status,
        405,
        "GET on a POST route"
    );
    assert_eq!(roundtrip(addr, "garbage\r\n\r\n").status, 400);
    handle.shutdown();
}
