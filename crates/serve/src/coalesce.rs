//! Request coalescing: identical in-flight requests share one
//! computation.
//!
//! The first request for a content address becomes the **leader** — it
//! owns enqueuing the computation. Every later request for the same
//! address while that computation is in flight becomes a **follower**
//! and just waits on the leader's [`Slot`]. When the result is
//! published, all waiters wake with a clone of the same body — which is
//! sound for the same reason the cache is: responses are pure functions
//! of the request, so there is nothing request-specific to lose by
//! sharing.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::ServiceError;

/// One in-flight computation's result cell: filled exactly once,
/// then broadcast to every waiter.
#[derive(Debug, Default)]
pub struct Slot {
    done: Mutex<Option<Result<String, ServiceError>>>,
    cv: Condvar,
}

impl Slot {
    /// Blocks until the result is published, up to `timeout` (`None`
    /// waits forever). Returns `None` on timeout — the computation keeps
    /// running and will still fill the cache for later requests.
    pub fn wait(&self, timeout: Option<Duration>) -> Option<Result<String, ServiceError>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut done = self.done.lock().expect("slot lock");
        loop {
            if let Some(result) = done.as_ref() {
                return Some(result.clone());
            }
            match deadline {
                None => done = self.cv.wait(done).expect("slot lock"),
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return None;
                    }
                    let (guard, timed_out) = self.cv.wait_timeout(done, left).expect("slot lock");
                    done = guard;
                    if timed_out.timed_out() && done.is_none() {
                        return None;
                    }
                }
            }
        }
    }

    fn publish(&self, result: Result<String, ServiceError>) {
        let mut done = self.done.lock().expect("slot lock");
        debug_assert!(done.is_none(), "slot published twice");
        *done = Some(result);
        self.cv.notify_all();
    }
}

/// Whether a claim made this request the leader or a follower.
#[derive(Debug)]
pub enum Claim {
    /// First request for this key: caller must compute (or publish the
    /// failure) and then [`Inflight::publish`].
    Leader(Arc<Slot>),
    /// A computation for this key is already in flight: wait on it.
    Follower(Arc<Slot>),
}

/// The in-flight computation table, keyed by content address.
#[derive(Debug, Default)]
pub struct Inflight {
    slots: Mutex<HashMap<String, Arc<Slot>>>,
}

impl Inflight {
    /// An empty table.
    pub fn new() -> Self {
        Inflight::default()
    }

    /// Claims `key`: the first caller becomes the leader, everyone else
    /// a follower on the same slot.
    pub fn claim(&self, key: &str) -> Claim {
        let mut slots = self.slots.lock().expect("inflight lock");
        match slots.get(key) {
            Some(slot) => Claim::Follower(Arc::clone(slot)),
            None => {
                let slot = Arc::new(Slot::default());
                slots.insert(key.to_string(), Arc::clone(&slot));
                Claim::Leader(slot)
            }
        }
    }

    /// Publishes the leader's result: retires the key so later requests
    /// go to the cache (or start fresh), then wakes every waiter.
    ///
    /// The key is removed *before* the broadcast; a request that arrives
    /// in between becomes a new leader and — on the success path — hits
    /// the cache that was filled before publishing.
    pub fn publish(&self, key: &str, slot: &Arc<Slot>, result: Result<String, ServiceError>) {
        self.slots.lock().expect("inflight lock").remove(key);
        slot.publish(result);
    }

    /// Number of distinct keys currently in flight.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("inflight lock").len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn first_claim_leads_rest_follow() {
        let inflight = Inflight::new();
        let leader = match inflight.claim("k") {
            Claim::Leader(slot) => slot,
            Claim::Follower(_) => panic!("first claim must lead"),
        };
        assert!(matches!(inflight.claim("k"), Claim::Follower(_)));
        assert!(matches!(inflight.claim("other"), Claim::Leader(_)));
        assert_eq!(inflight.len(), 2);
        inflight.publish("k", &leader, Ok("body".into()));
        assert_eq!(inflight.len(), 1);
        // Retired: the next claim for the key leads again.
        assert!(matches!(inflight.claim("k"), Claim::Leader(_)));
    }

    #[test]
    fn waiters_all_receive_the_published_result() {
        let inflight = Arc::new(Inflight::new());
        let leader = match inflight.claim("k") {
            Claim::Leader(slot) => slot,
            Claim::Follower(_) => unreachable!(),
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let slot = match inflight.claim("k") {
                    Claim::Follower(slot) => slot,
                    Claim::Leader(_) => unreachable!(),
                };
                thread::spawn(move || slot.wait(None))
            })
            .collect();
        inflight.publish("k", &leader, Ok("shared".into()));
        for w in waiters {
            assert_eq!(w.join().unwrap(), Some(Ok("shared".into())));
        }
    }

    #[test]
    fn wait_after_publish_returns_immediately() {
        let inflight = Inflight::new();
        let leader = match inflight.claim("k") {
            Claim::Leader(slot) => slot,
            Claim::Follower(_) => unreachable!(),
        };
        let late = Arc::clone(&leader);
        inflight.publish("k", &leader, Ok("early".into()));
        assert_eq!(
            late.wait(Some(Duration::from_millis(1))),
            Some(Ok("early".into()))
        );
    }

    #[test]
    fn wait_times_out_without_a_result() {
        let slot = Slot::default();
        assert_eq!(slot.wait(Some(Duration::from_millis(10))), None);
    }

    #[test]
    fn errors_broadcast_like_successes() {
        let inflight = Inflight::new();
        let leader = match inflight.claim("k") {
            Claim::Leader(slot) => slot,
            Claim::Follower(_) => unreachable!(),
        };
        let err = ServiceError::new(503, "shed");
        inflight.publish("k", &leader, Err(err.clone()));
        assert_eq!(leader.wait(None), Some(Err(err)));
    }
}
