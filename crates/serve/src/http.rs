//! A deliberately small HTTP/1.1 implementation over std I/O.
//!
//! The serve layer needs exactly four things from HTTP: parse a request
//! head, read a `Content-Length` body, write a response, and fail
//! loudly on anything outside that subset. Hand-rolling those ~200
//! lines keeps the workspace at zero network build dependencies (the
//! container vendors no crates), and the strictness is a feature: every
//! request either parses into an [`HttpRequest`] or maps to a precise
//! 4xx via [`HttpError`].
//!
//! Out of scope on purpose: chunked transfer encoding, keep-alive
//! (every response carries `Connection: close`), TLS, and HTTP/2. The
//! load generator and CI smoke clients speak the same subset.

use std::io::{self, BufRead, Write};

/// A parsed request: method, target, headers, UTF-8 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (`/healthz`, `/v1/experiments`, ...).
    pub target: String,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl HttpRequest {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line.
    Closed,
    /// The bytes on the wire were not the supported HTTP subset.
    Malformed(String),
    /// The declared body length exceeds the server's limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Server limit.
        limit: usize,
    },
    /// Transport failure (includes read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed before a request line"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn malformed(why: impl Into<String>) -> HttpError {
    HttpError::Malformed(why.into())
}

/// Reads one request from `r`.
///
/// # Errors
///
/// [`HttpError::Closed`] on a clean EOF before any bytes, otherwise the
/// parse or transport failure.
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<HttpRequest, HttpError> {
    let request_line = match read_line(r)? {
        None => return Err(HttpError::Closed),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts
        .next()
        .ok_or_else(|| malformed("request line has no target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| malformed("request line has no version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(malformed(format!(
            "unsupported request line {request_line:?}"
        )));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(malformed(format!("unsupported method {method:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| malformed("eof inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= 100 {
            return Err(malformed("more than 100 headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed(format!("header line without a colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = HttpRequest {
        method,
        target,
        headers,
        body: String::new(),
    };
    if let Some(len) = request.header("content-length") {
        let declared: usize = len
            .parse()
            .map_err(|_| malformed(format!("bad content-length {len:?}")))?;
        if declared > max_body {
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: max_body,
            });
        }
        let mut body = vec![0u8; declared];
        r.read_exact(&mut body)?;
        request.body = String::from_utf8(body).map_err(|_| malformed("body is not valid UTF-8"))?;
    }
    Ok(request)
}

/// Reads one CRLF- (or bare-LF-) terminated line; `None` on clean EOF.
/// Lines are capped at 8 KiB — nothing in the protocol needs more.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(malformed("eof mid-line"));
            }
            _ => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(
                        String::from_utf8(line)
                            .map_err(|_| malformed("header bytes are not valid UTF-8"))?,
                    ));
                }
                if line.len() >= 8192 {
                    return Err(malformed("line longer than 8192 bytes"));
                }
                line.push(byte[0]);
            }
        }
    }
}

/// The reason phrase for every status this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one complete response with `Content-Length` framing and
/// `Connection: close`, plus any `extra` headers (`X-Cache`,
/// `Retry-After`, ...).
///
/// # Errors
///
/// Propagates transport failures from `w`.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "Connection: close\r\n\r\n")?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, "");
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let req = parse(
            "POST /v1/experiments HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse("GET / HTTP/1.1\r\nX-ThInG: v\r\n\r\n").unwrap();
        assert_eq!(req.header("x-thing"), Some("v"));
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse("GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
    }

    #[test]
    fn rejects_garbage_request_lines() {
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies_by_declared_length() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        assert!(matches!(
            parse(raw),
            Err(HttpError::BodyTooLarge {
                declared: 9999,
                limit: 1024
            })
        ));
    }

    #[test]
    fn rejects_truncated_bodies() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(parse(raw), Err(HttpError::Io(_))));
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "application/json",
            &[("X-Cache", "hit".to_string())],
            "{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nX-Cache: hit\r\nConnection: close\r\n\r\n{}"
        );
    }

    #[test]
    fn reasons_cover_emitted_statuses() {
        for status in [200, 400, 404, 405, 413, 500, 503, 504] {
            assert_ne!(reason(status), "Unknown");
        }
        assert_eq!(reason(418), "Unknown");
    }
}
