//! The content-addressed result cache.
//!
//! Keys are the [`Service::key`](crate::Service::key) content addresses
//! (canonical-form hashes), values are complete response bodies. Because
//! a response is a pure function of its request, a stored body never goes
//! stale — the only reason to drop one is capacity, so eviction is plain
//! FIFO over insertion order: the simplest policy that bounds memory,
//! and repeated-traffic phases (the workload this server exists for)
//! re-insert hot keys quickly after any eviction.

use std::collections::HashMap;
use std::collections::VecDeque;

/// A bounded map from content address to response body.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<String, String>,
    order: VecDeque<String>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` bodies.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a server without a cache is a
    /// different deployment, not an empty cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        ResultCache {
            map: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// The stored body for `key`, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        self.map.get(key).cloned()
    }

    /// Stores `body` under `key`, evicting the oldest entry at capacity.
    /// Re-inserting an existing key refreshes the body without growing
    /// the cache.
    pub fn insert(&mut self, key: &str, body: String) {
        if self.map.insert(key.to_string(), body).is_some() {
            return;
        }
        self.order.push_back(key.to_string());
        while self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
    }

    /// Number of cached bodies.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_and_returns_bodies() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get("k"), None);
        c.insert("k", "body".into());
        assert_eq!(c.get("k"), Some("body".into()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut c = ResultCache::new(2);
        c.insert("a", "1".into());
        c.insert("b", "2".into());
        c.insert("c", "3".into());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), None, "oldest entry is evicted first");
        assert_eq!(c.get("b"), Some("2".into()));
        assert_eq!(c.get("c"), Some("3".into()));
    }

    #[test]
    fn reinsert_refreshes_without_duplicating() {
        let mut c = ResultCache::new(2);
        c.insert("a", "1".into());
        c.insert("a", "updated".into());
        c.insert("b", "2".into());
        c.insert("c", "3".into());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), None, "a was still the oldest insertion");
        assert_eq!(c.get("c"), Some("3".into()));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = ResultCache::new(0);
    }
}
