//! The bounded compute queue between handler threads and sim workers.
//!
//! Admission is `try_push` — a full queue is an immediate
//! [`PushError::Full`], never a block — because the whole point of the
//! bound is backpressure: the handler turns `Full` into `503` +
//! `Retry-After` instead of letting memory grow with offered load.
//! Workers block on `pop` until a job or shutdown arrives.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed the request.
    Full,
    /// The queue is shut down; no new work is accepted.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking admission, blocking removal.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-depth queue would shed
    /// every request.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Admits `job`, or refuses immediately.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, job: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.jobs.push_back(job);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed **and**
    /// drained (pending jobs are still delivered after close).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Stops admission and wakes every blocked worker; already-queued
    /// jobs still drain.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Number of jobs waiting right now.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").jobs.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn full_queue_refuses_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_delivers_in_order() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1), "queued work still drains after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u32>::new(0);
    }
}
