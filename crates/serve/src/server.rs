//! The server: accept loop, request routing, and the compute pipeline
//! (cache → coalesce → bounded queue → sim workers).
//!
//! Thread model: `handler_threads` acceptors each own a clone of the
//! listener and handle one connection at a time end-to-end (parse,
//! route, wait for the result, respond; every response closes the
//! connection). `workers` compute threads pull jobs from the
//! [`BoundedQueue`] and run [`Service::compute`]. The only coupling
//! between the two pools is the queue (bounded, for backpressure) and
//! the coalescing slots (so a handler can wait for a computation some
//! other request started).
//!
//! The request walk for `POST /v1/experiments`:
//!
//! 1. `Service::key` → content address (4xx on a malformed body);
//! 2. cache probe → `200` with `X-Cache: hit` on a hit;
//! 3. `Service::cost` vs. the configured job budget → `413` if over;
//! 4. claim the address in the in-flight table: the leader enqueues
//!    (full queue → `503` + `Retry-After`, broadcast to any followers),
//!    followers just wait (`X-Cache: coalesced`);
//! 5. wait on the slot up to the configured timeout → `504` on
//!    expiry (the computation keeps running and still fills the cache);
//! 6. a worker computes, fills the cache, and publishes to the slot.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hydra_stats::Json;

use crate::cache::ResultCache;
use crate::coalesce::{Claim, Inflight, Slot};
use crate::http::{read_request, write_response, HttpError, HttpRequest};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};
use crate::{Config, Service, ServiceError};

/// The POST target that runs an experiment.
pub const EXPERIMENTS_PATH: &str = "/v1/experiments";

/// One queued computation: the request body plus the slot to publish to.
struct ComputeJob {
    key: String,
    body: String,
    slot: Arc<Slot>,
}

/// Everything shared between handler and worker threads.
struct Shared {
    service: Arc<dyn Service>,
    config: Config,
    cache: Mutex<ResultCache>,
    inflight: Inflight,
    queue: BoundedQueue<ComputeJob>,
    metrics: Metrics,
    shutdown: AtomicBool,
}

/// A running server; dropping the handle leaks the threads, so call
/// [`ServerHandle::shutdown`] when done.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handlers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
/// the handler and worker pools.
///
/// # Errors
///
/// Propagates socket errors from binding or cloning the listener.
pub fn serve(addr: &str, service: Arc<dyn Service>, config: Config) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        cache: Mutex::new(ResultCache::new(config.cache_capacity)),
        inflight: Inflight::new(),
        queue: BoundedQueue::new(config.queue_depth),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        config,
    });

    let mut handlers = Vec::with_capacity(shared.config.handler_threads);
    for i in 0..shared.config.handler_threads {
        let shared = Arc::clone(&shared);
        let listener = listener.try_clone()?;
        handlers.push(
            thread::Builder::new()
                .name(format!("serve-handler-{i}"))
                .spawn(move || handler_loop(&shared, &listener))
                .expect("spawn handler thread"),
        );
    }
    let mut workers = Vec::with_capacity(shared.config.workers);
    for i in 0..shared.config.workers {
        let shared = Arc::clone(&shared);
        workers.push(
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread"),
        );
    }
    Ok(ServerHandle {
        addr: local,
        shared,
        handlers,
        workers,
    })
}

impl ServerHandle {
    /// The bound address (with the real port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current `/metrics` document (also available over HTTP).
    pub fn metrics_json(&self) -> Json {
        metrics_doc(&self.shared)
    }

    /// Number of [`Service::compute`] runs so far — what the coalescing
    /// tests assert on.
    pub fn computed_count(&self) -> u64 {
        self.shared.metrics.computed_count()
    }

    /// Stops accepting, drains queued work, and joins every thread.
    ///
    /// In-flight requests complete normally: handlers are joined first
    /// (workers still running, so their waits resolve), then the queue
    /// closes and workers drain it.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // One wake-up connection per handler unblocks every accept().
        for _ in &self.handlers {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.handlers {
            let _ = h.join();
        }
        self.shared.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn handler_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // A stuck peer must not pin a handler forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        handle_connection(shared, stream);
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let started = Instant::now();
        let result = shared.service.compute(&job.body);
        shared.metrics.computed(started.elapsed(), result.is_ok());
        if let Ok(body) = &result {
            shared
                .cache
                .lock()
                .expect("cache lock")
                .insert(&job.key, body.clone());
        }
        shared.inflight.publish(&job.key, &job.slot, result);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut out = stream;
    let request = match read_request(&mut reader, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(HttpError::Closed) => return,
        Err(HttpError::BodyTooLarge { declared, limit }) => {
            shared.metrics.rejected();
            respond_error(
                &mut out,
                413,
                &format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                &[],
            );
            return;
        }
        Err(HttpError::Malformed(why)) => {
            shared.metrics.rejected();
            respond_error(&mut out, 400, &why, &[]);
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    route(shared, &mut out, &request);
}

fn route(shared: &Shared, out: &mut TcpStream, request: &HttpRequest) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => {
            let _ = write_response(out, 200, "text/plain", &[], "ok\n");
        }
        ("GET", "/metrics") => {
            let body = metrics_doc(shared).pretty();
            let _ = write_response(out, 200, "application/json", &[], &body);
        }
        ("POST", EXPERIMENTS_PATH) => handle_experiment(shared, out, &request.body),
        (_, "/healthz" | "/metrics" | EXPERIMENTS_PATH) => {
            shared.metrics.rejected();
            respond_error(
                out,
                405,
                &format!("method {} not allowed here", request.method),
                &[],
            );
        }
        (_, target) => {
            shared.metrics.rejected();
            respond_error(out, 404, &format!("no such resource {target:?}"), &[]);
        }
    }
}

fn handle_experiment(shared: &Shared, out: &mut TcpStream, body: &str) {
    let started = Instant::now();
    let key = match shared.service.key(body) {
        Ok(key) => key,
        Err(e) => {
            shared.metrics.rejected();
            respond_error(out, e.status, &e.message, &[]);
            return;
        }
    };

    if let Some(cached) = shared.cache.lock().expect("cache lock").get(&key) {
        shared.metrics.hit(started.elapsed());
        let _ = write_response(
            out,
            200,
            "application/json",
            &[("X-Cache", "hit".to_string())],
            &cached,
        );
        return;
    }

    if shared.config.job_budget > 0 {
        match shared.service.cost(body) {
            Ok(cost) if cost > shared.config.job_budget => {
                shared.metrics.rejected();
                respond_error(
                    out,
                    413,
                    &format!(
                        "request plans {cost} engine jobs, over the budget of {}",
                        shared.config.job_budget
                    ),
                    &[],
                );
                return;
            }
            Ok(_) => {}
            Err(e) => {
                shared.metrics.rejected();
                respond_error(out, e.status, &e.message, &[]);
                return;
            }
        }
    }

    let (slot, cache_state) = match shared.inflight.claim(&key) {
        Claim::Leader(slot) => {
            let job = ComputeJob {
                key: key.clone(),
                body: body.to_string(),
                slot: Arc::clone(&slot),
            };
            if let Err(refusal) = shared.queue.try_push(job) {
                let why = match refusal {
                    PushError::Full => "compute queue is full",
                    PushError::Closed => "server is shutting down",
                };
                // Followers already waiting on this slot get the same
                // refusal; the key retires so a retry can lead afresh.
                shared
                    .inflight
                    .publish(&key, &slot, Err(ServiceError::new(503, why)));
                shared.metrics.shed();
                respond_error(out, 503, why, &retry_after(shared));
                return;
            }
            (slot, "miss")
        }
        Claim::Follower(slot) => (slot, "coalesced"),
    };

    let timeout = match shared.config.timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    match slot.wait(timeout) {
        None => {
            shared.metrics.timeout();
            respond_error(
                out,
                504,
                &format!(
                    "no result within {} ms; the computation continues and will be cached",
                    shared.config.timeout_ms
                ),
                &[],
            );
        }
        Some(Ok(body)) => {
            match cache_state {
                "miss" => shared.metrics.miss(started.elapsed()),
                _ => shared.metrics.coalesced(started.elapsed()),
            }
            let _ = write_response(
                out,
                200,
                "application/json",
                &[("X-Cache", cache_state.to_string())],
                &body,
            );
        }
        Some(Err(e)) => {
            let extra = if e.status == 503 {
                shared.metrics.shed();
                retry_after(shared)
            } else {
                shared.metrics.rejected();
                Vec::new()
            };
            respond_error(out, e.status, &e.message, &extra);
        }
    }
}

fn retry_after(shared: &Shared) -> Vec<(&'static str, String)> {
    vec![("Retry-After", shared.config.retry_after_secs.to_string())]
}

fn respond_error(out: &mut impl Write, status: u16, message: &str, extra: &[(&str, String)]) {
    let body = Json::obj([
        ("status", Json::int(u64::from(status))),
        ("error", Json::str(message)),
    ])
    .pretty();
    let _ = write_response(out, status, "application/json", extra, &body);
}

fn metrics_doc(shared: &Shared) -> Json {
    shared.metrics.to_json(
        shared.queue.len(),
        shared.queue.capacity(),
        shared.cache.lock().expect("cache lock").len(),
    )
}
