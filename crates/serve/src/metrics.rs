//! Server metrics: request outcome counters plus latency histograms,
//! rendered as the `/metrics` JSON document.
//!
//! Latencies are recorded in whole milliseconds into
//! [`hydra_stats::Histogram`]s (exact buckets below two seconds, one
//! overflow bucket above — the same machinery every experiment report
//! uses), so `/metrics` reports p50/p95/p99 with the stable field names
//! the rest of the workspace already emits.

use std::sync::Mutex;
use std::time::Duration;

use hydra_stats::{Histogram, Json};

/// Exact-bucket cap for latency histograms: two seconds in ms.
const LATENCY_CAP_MS: usize = 2_000;

/// Thread-safe server metrics; one instance per server.
#[derive(Debug)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    hits: u64,
    misses: u64,
    coalesced: u64,
    shed: u64,
    timeouts: u64,
    rejected: u64,
    computed: u64,
    compute_errors: u64,
    request_ms: Histogram,
    compute_ms: Histogram,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics {
            inner: Mutex::new(Inner {
                hits: 0,
                misses: 0,
                coalesced: 0,
                shed: 0,
                timeouts: 0,
                rejected: 0,
                computed: 0,
                compute_errors: 0,
                request_ms: Histogram::with_cap(LATENCY_CAP_MS),
                compute_ms: Histogram::with_cap(LATENCY_CAP_MS),
            }),
        }
    }

    fn with(&self, f: impl FnOnce(&mut Inner)) {
        f(&mut self.inner.lock().expect("metrics lock"));
    }

    /// A request answered straight from the result cache.
    pub fn hit(&self, latency: Duration) {
        self.with(|m| {
            m.hits += 1;
            m.request_ms.record(latency.as_millis() as u64);
        });
    }

    /// A request that led a fresh computation.
    pub fn miss(&self, latency: Duration) {
        self.with(|m| {
            m.misses += 1;
            m.request_ms.record(latency.as_millis() as u64);
        });
    }

    /// A request that shared another request's in-flight computation.
    pub fn coalesced(&self, latency: Duration) {
        self.with(|m| {
            m.coalesced += 1;
            m.request_ms.record(latency.as_millis() as u64);
        });
    }

    /// A request shed with 503 because the queue was full.
    pub fn shed(&self) {
        self.with(|m| m.shed += 1);
    }

    /// A request that gave up waiting (504); the computation continues.
    pub fn timeout(&self) {
        self.with(|m| m.timeouts += 1);
    }

    /// A request rejected before computing (4xx: malformed, unknown
    /// experiment, over budget).
    pub fn rejected(&self) {
        self.with(|m| m.rejected += 1);
    }

    /// One service computation finished (success or failure), with its
    /// compute-side latency.
    pub fn computed(&self, elapsed: Duration, ok: bool) {
        self.with(|m| {
            m.computed += 1;
            if !ok {
                m.compute_errors += 1;
            }
            m.compute_ms.record(elapsed.as_millis() as u64);
        });
    }

    /// Number of computations run so far (the coalescing tests assert on
    /// this: N identical concurrent requests must raise it by one).
    pub fn computed_count(&self) -> u64 {
        self.inner.lock().expect("metrics lock").computed
    }

    /// Cache hits so far.
    pub fn hit_count(&self) -> u64 {
        self.inner.lock().expect("metrics lock").hits
    }

    /// The `/metrics` document. `queue_len`/`queue_capacity` are sampled
    /// by the caller (the queue lives in the server, not here).
    pub fn to_json(&self, queue_len: usize, queue_capacity: usize, cached: usize) -> Json {
        let m = self.inner.lock().expect("metrics lock");
        let lookups = m.hits + m.misses + m.coalesced;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            m.hits as f64 / lookups as f64
        };
        Json::obj([
            (
                "requests",
                Json::obj([
                    ("served", Json::int(lookups)),
                    ("shed", Json::int(m.shed)),
                    ("timeouts", Json::int(m.timeouts)),
                    ("rejected", Json::int(m.rejected)),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("hits", Json::int(m.hits)),
                    ("misses", Json::int(m.misses)),
                    ("coalesced", Json::int(m.coalesced)),
                    ("hit_rate", Json::num(hit_rate)),
                    ("entries", Json::int(cached as u64)),
                ]),
            ),
            (
                "engine",
                Json::obj([
                    ("computed", Json::int(m.computed)),
                    ("compute_errors", Json::int(m.compute_errors)),
                    ("queue_len", Json::int(queue_len as u64)),
                    ("queue_capacity", Json::int(queue_capacity as u64)),
                ]),
            ),
            ("request_ms", m.request_ms.to_json()),
            ("compute_ms", m.compute_ms.to_json()),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_outcome_class() {
        let m = Metrics::new();
        m.hit(Duration::from_millis(1));
        m.hit(Duration::from_millis(2));
        m.miss(Duration::from_millis(40));
        m.coalesced(Duration::from_millis(30));
        m.shed();
        m.timeout();
        m.rejected();
        m.computed(Duration::from_millis(35), true);
        m.computed(Duration::from_millis(5), false);

        let doc = m.to_json(3, 8, 1);
        let get = |path: &[&str]| {
            let mut cur = doc.clone();
            for p in path {
                cur = cur.get(p).expect(p).clone();
            }
            cur.as_num().unwrap()
        };
        assert_eq!(get(&["requests", "served"]), 4.0);
        assert_eq!(get(&["requests", "shed"]), 1.0);
        assert_eq!(get(&["requests", "timeouts"]), 1.0);
        assert_eq!(get(&["requests", "rejected"]), 1.0);
        assert_eq!(get(&["cache", "hits"]), 2.0);
        assert_eq!(get(&["cache", "hit_rate"]), 0.5);
        assert_eq!(get(&["cache", "entries"]), 1.0);
        assert_eq!(get(&["engine", "computed"]), 2.0);
        assert_eq!(get(&["engine", "compute_errors"]), 1.0);
        assert_eq!(get(&["engine", "queue_len"]), 3.0);
        assert_eq!(get(&["engine", "queue_capacity"]), 8.0);
        assert_eq!(get(&["request_ms", "count"]), 4.0);
        assert_eq!(get(&["compute_ms", "count"]), 2.0);
        assert_eq!(m.computed_count(), 2);
        assert_eq!(m.hit_count(), 2);
    }

    #[test]
    fn empty_metrics_have_zero_hit_rate() {
        let doc = Metrics::new().to_json(0, 8, 0);
        assert_eq!(
            doc.get("cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(Json::as_num),
            Some(0.0)
        );
    }
}
