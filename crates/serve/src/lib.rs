//! Simulation-as-a-service substrate for the HydraScalar reproduction.
//!
//! Every result in this workspace is a **pure function of its request**:
//! the simulator is deterministic and the experiment engine merges job
//! outputs in plan order, so the same request always yields the same
//! bytes. This crate turns that property into a long-running service:
//!
//! * a hand-rolled HTTP/1.1 server over `std::net::TcpListener` — zero
//!   network build dependencies ([`http`]);
//! * a content-addressed result cache: repeated queries are near-free,
//!   and a cache hit is *byte-identical* to a cold computation
//!   ([`cache`]);
//! * request coalescing: identical in-flight requests share one
//!   computation ([`coalesce`]);
//! * a bounded compute queue with backpressure — a full queue answers
//!   `503` + `Retry-After` instead of growing without bound
//!   ([`queue`]);
//! * per-request job budgets (`413`) and wait timeouts (`504`);
//! * `/healthz` and a `/metrics` document built on the workspace's
//!   [`hydra_stats::Histogram`] machinery ([`metrics`]).
//!
//! The crate is generic over what it serves: a [`Service`] maps request
//! bodies to content addresses and response bodies. The experiment
//! adapter (requests = schema-versioned experiment documents, compute =
//! plan → engine → harvest) lives in `hydra-bench`, which wires this
//! server up as `expt serve`.
//!
//! # Examples
//!
//! ```
//! use hydra_serve::{serve, Config, Service, ServiceError};
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//!
//! struct Upper;
//! impl Service for Upper {
//!     fn key(&self, body: &str) -> Result<String, ServiceError> {
//!         Ok(body.to_string())
//!     }
//!     fn compute(&self, body: &str) -> Result<String, ServiceError> {
//!         Ok(body.to_uppercase())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handle = serve("127.0.0.1:0", Arc::new(Upper), Config::default())?;
//! let mut conn = TcpStream::connect(handle.addr())?;
//! write!(conn, "POST /v1/experiments HTTP/1.1\r\nContent-Length: 5\r\n\r\nhydra")?;
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply)?; // Connection: close frames the reply
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.ends_with("HYDRA"));
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;

pub use cache::ResultCache;
pub use coalesce::{Claim, Inflight, Slot};
pub use metrics::Metrics;
pub use queue::{BoundedQueue, PushError};
pub use server::{serve, ServerHandle, EXPERIMENTS_PATH};

/// What the server serves: a pure mapping from request bodies to
/// response bodies, plus the content address that makes responses
/// cacheable.
///
/// The contract the cache and coalescer rely on: `compute` must be a
/// **pure function** of the body as seen through `key` — two bodies with
/// equal keys must compute byte-identical responses. The experiment
/// adapter gets this for free from the engine's deterministic merge.
pub trait Service: Send + Sync + 'static {
    /// The content address of `body` (for the experiment service: the
    /// canonical-form SHA-256 of the typed request).
    ///
    /// # Errors
    ///
    /// A [`ServiceError`] (usually status 400) for bodies that do not
    /// parse as a request at all.
    fn key(&self, body: &str) -> Result<String, ServiceError>;

    /// An admission-control cost estimate for `body` — engine jobs, for
    /// the experiment service. Checked against [`Config::job_budget`]
    /// *before* the request is queued. The default costs nothing.
    ///
    /// # Errors
    ///
    /// A [`ServiceError`] when the cost cannot be determined.
    fn cost(&self, body: &str) -> Result<u64, ServiceError> {
        let _ = body;
        Ok(0)
    }

    /// Computes the response body for `body`. Runs on a worker thread;
    /// the result is cached under [`Service::key`] and broadcast to
    /// every coalesced waiter.
    ///
    /// # Errors
    ///
    /// A [`ServiceError`]; failures are *not* cached.
    fn compute(&self, body: &str) -> Result<String, ServiceError>;
}

/// A service-level failure, carrying the HTTP status it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// HTTP status code (400 bad request, 404 unknown experiment, 413
    /// over budget, 500 internal).
    pub status: u16,
    /// Human-readable explanation, returned in the error body.
    pub message: String,
}

impl ServiceError {
    /// An error with `status` and `message`.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        ServiceError {
            status,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.status, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// Server sizing and policy knobs; `Config::default()` is sized for
/// tests and local serving.
#[derive(Debug, Clone)]
pub struct Config {
    /// Threads accepting and answering connections (each handles one
    /// connection at a time, end to end).
    pub handler_threads: usize,
    /// Compute worker threads pulling from the bounded queue.
    pub workers: usize,
    /// Bounded-queue depth; a full queue sheds with `503`.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (FIFO eviction).
    pub cache_capacity: usize,
    /// Per-request engine-job budget ([`Service::cost`] above this is
    /// refused with `413`); `0` disables the check.
    pub job_budget: u64,
    /// How long a handler waits for a result before answering `504`;
    /// `0` waits forever. The computation always runs to completion and
    /// fills the cache either way.
    pub timeout_ms: u64,
    /// Value of the `Retry-After` header on `503` responses, in seconds.
    pub retry_after_secs: u64,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            handler_threads: 4,
            workers: 2,
            queue_depth: 32,
            cache_capacity: 1024,
            job_budget: 0,
            timeout_ms: 0,
            retry_after_secs: 1,
            max_body_bytes: 1 << 20,
        }
    }
}
