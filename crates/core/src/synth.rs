//! Synthetic speculation-trace generation.
//!
//! [`TraceReplayer`](crate::TraceReplayer) evaluates repair policies on a
//! fetch-order event trace. This module *generates* such traces from a
//! small parametric model — call depth, call density, misprediction rate,
//! wrong-path length and wrong-path call/return activity — so repair
//! policies can be compared analytically in microseconds, without the
//! cycle-level pipeline.
//!
//! The model captures the paper's core mechanics: the correct path keeps
//! a perfectly nested call structure (so a perfect stack would always
//! hit), while each misprediction splices in a burst of wrong-path pushes
//! and pops that are later squashed. What a policy loses on such bursts
//! is exactly what it loses in the full simulator, minus timing effects.
//!
//! # Examples
//!
//! ```
//! use ras_core::{RepairPolicy, SyntheticTrace, TraceReplayer};
//!
//! let trace = SyntheticTrace::builder()
//!     .events(20_000)
//!     .mispredict_rate(0.1)
//!     .seed(7)
//!     .generate();
//!
//! let mut none = TraceReplayer::new(32, RepairPolicy::None);
//! let mut repaired = TraceReplayer::new(32, RepairPolicy::TosPointerAndContents);
//! none.replay(&trace);
//! repaired.replay(&trace);
//! assert!(repaired.outcome().hit_rate() >= none.outcome().hit_rate());
//! ```

use crate::TraceEvent;

/// A tiny deterministic xorshift64* generator so this crate stays
/// dependency-free.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi]`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// Builder for synthetic speculation traces.
///
/// Defaults model a call-intensive integer program on a machine with a
/// ~5% branch misprediction rate. All knobs are per-event probabilities
/// or bounds; generation is deterministic in the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTrace {
    events: usize,
    call_density: f64,
    branch_density: f64,
    mispredict_rate: f64,
    wrong_path_len: (usize, usize),
    wrong_path_call_density: f64,
    max_depth: usize,
    seed: u64,
}

impl SyntheticTrace {
    /// Starts a builder with the default model.
    pub fn builder() -> SyntheticTrace {
        SyntheticTrace {
            events: 10_000,
            call_density: 0.04,
            branch_density: 0.15,
            mispredict_rate: 0.05,
            wrong_path_len: (4, 40),
            wrong_path_call_density: 0.08,
            max_depth: 24,
            seed: 1,
        }
    }

    /// Number of correct-path event slots to generate.
    pub fn events(mut self, n: usize) -> Self {
        self.events = n;
        self
    }

    /// Probability an event slot is a call (matched by a later return).
    pub fn call_density(mut self, p: f64) -> Self {
        self.call_density = p;
        self
    }

    /// Probability an event slot is a conditional branch.
    pub fn branch_density(mut self, p: f64) -> Self {
        self.branch_density = p;
        self
    }

    /// Probability a branch mispredicts (and spawns a wrong path).
    pub fn mispredict_rate(mut self, p: f64) -> Self {
        self.mispredict_rate = p;
        self
    }

    /// Bounds on wrong-path length, in event slots.
    pub fn wrong_path_len(mut self, lo: usize, hi: usize) -> Self {
        self.wrong_path_len = (lo, hi);
        self
    }

    /// Probability a wrong-path slot is a call or return (each half).
    pub fn wrong_path_call_density(mut self, p: f64) -> Self {
        self.wrong_path_call_density = p;
        self
    }

    /// Maximum correct-path call nesting.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d.max(1);
        self
    }

    /// Generation seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Generates the trace.
    ///
    /// The returned events satisfy the correct-path invariant: every
    /// `Return`'s `actual_target` matches its dynamically-enclosing
    /// `Call`, so a perfect stack scores 100%.
    pub fn generate(&self) -> Vec<TraceEvent> {
        let mut rng = XorShift::new(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut out = Vec::with_capacity(self.events);
        let mut shadow: Vec<u64> = Vec::new();
        let mut next_addr: u64 = 0x1000;
        let mut next_ckpt: u64 = 0;

        for _ in 0..self.events {
            let roll = rng.next_f64();
            if roll < self.call_density && shadow.len() < self.max_depth {
                next_addr += 4;
                shadow.push(next_addr);
                out.push(TraceEvent::Call {
                    return_addr: next_addr,
                });
            } else if roll < self.call_density * 2.0 && !shadow.is_empty() {
                let actual_target = shadow.pop().expect("checked non-empty");
                out.push(TraceEvent::Return { actual_target });
            } else if roll < self.call_density * 2.0 + self.branch_density {
                let id = next_ckpt;
                next_ckpt += 1;
                out.push(TraceEvent::Predict { id });
                if rng.next_f64() < self.mispredict_rate {
                    // Wrong path: bounded burst of calls and returns that
                    // will be squashed by the restore.
                    let len = rng.range(self.wrong_path_len.0, self.wrong_path_len.1);
                    let mut wrong_depth = 0usize;
                    for _ in 0..len {
                        let r = rng.next_f64();
                        if r < self.wrong_path_call_density {
                            next_addr += 4;
                            out.push(TraceEvent::Call {
                                return_addr: 0xdead_0000 + next_addr,
                            });
                            wrong_depth += 1;
                        } else if r < self.wrong_path_call_density * 2.0
                            && (wrong_depth > 0 || !shadow.is_empty())
                        {
                            // A wrong-path return pops whatever is there;
                            // its "actual" target is never scored because
                            // the event's prediction is squashed — but the
                            // replayer scores every Return, so mark it
                            // with a sentinel that cannot match.
                            out.push(TraceEvent::Return {
                                actual_target: u64::MAX,
                            });
                            wrong_depth = wrong_depth.saturating_sub(1);
                        }
                    }
                    out.push(TraceEvent::ResolveWrong { id });
                } else {
                    out.push(TraceEvent::ResolveCorrect { id });
                }
            }
            // Remaining probability mass: plain instructions (no event).
        }
        // Unwind the correct path so every call returns.
        while let Some(actual_target) = shadow.pop() {
            out.push(TraceEvent::Return { actual_target });
        }
        out
    }

    /// Counts the correct-path returns a generated trace will score
    /// (wrong-path returns carry the `u64::MAX` sentinel).
    pub fn correct_returns(trace: &[TraceEvent]) -> u64 {
        trace
            .iter()
            .filter(
                |e| matches!(e, TraceEvent::Return { actual_target } if *actual_target != u64::MAX),
            )
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RepairPolicy, TraceReplayer};

    fn default_trace(seed: u64) -> Vec<TraceEvent> {
        SyntheticTrace::builder()
            .events(30_000)
            .seed(seed)
            .generate()
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(default_trace(5), default_trace(5));
        assert_ne!(default_trace(5), default_trace(6));
    }

    #[test]
    fn correct_path_is_perfectly_nested() {
        // A huge stack with full repair must score 100% on the correct-
        // path returns and miss only the wrong-path sentinels.
        let trace = default_trace(5);
        let mut r = TraceReplayer::new(4096, RepairPolicy::FullStack);
        r.replay(&trace);
        let expected = SyntheticTrace::correct_returns(&trace);
        assert_eq!(r.outcome().hits, expected);
    }

    #[test]
    fn policy_ladder_is_ordered_analytically() {
        let trace = SyntheticTrace::builder()
            .events(50_000)
            .mispredict_rate(0.12)
            .wrong_path_call_density(0.2)
            .seed(9)
            .generate();
        let rate = |p| {
            let mut r = TraceReplayer::new(32, p);
            r.replay(&trace);
            r.outcome().hit_rate()
        };
        let none = rate(RepairPolicy::None);
        let ptr = rate(RepairPolicy::TosPointer);
        let pc = rate(RepairPolicy::TosPointerAndContents);
        let full = rate(RepairPolicy::FullStack);
        assert!(none < ptr, "{none} vs {ptr}");
        assert!(ptr < pc, "{ptr} vs {pc}");
        assert!(pc <= full, "{pc} vs {full}");
    }

    #[test]
    fn higher_mispredict_rate_hurts_unrepaired_stacks() {
        let rate_at = |mr: f64| {
            let trace = SyntheticTrace::builder()
                .events(30_000)
                .mispredict_rate(mr)
                .seed(3)
                .generate();
            let mut r = TraceReplayer::new(32, RepairPolicy::None);
            r.replay(&trace);
            r.outcome().hit_rate()
        };
        assert!(rate_at(0.02) > rate_at(0.25));
    }

    #[test]
    fn depth_cap_is_respected() {
        let trace = SyntheticTrace::builder()
            .events(10_000)
            .call_density(0.4)
            .max_depth(5)
            .seed(2)
            .generate();
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        for e in &trace {
            match e {
                TraceEvent::Call { return_addr } if *return_addr < 0xdead_0000 => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                TraceEvent::Return { actual_target } if *actual_target != u64::MAX => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "trace unwinds");
        assert!(max_depth <= 5);
    }

    #[test]
    fn builder_setters_apply() {
        let t = SyntheticTrace::builder()
            .events(7)
            .call_density(0.5)
            .branch_density(0.25)
            .mispredict_rate(0.9)
            .wrong_path_len(1, 2)
            .wrong_path_call_density(0.3)
            .max_depth(0)
            .seed(11);
        assert_eq!(t.events, 7);
        assert_eq!(t.max_depth, 1, "clamped to at least one");
        assert_eq!(t.seed, 11);
        // Tiny trace generates without panicking.
        let _ = t.generate();
    }

    #[test]
    fn correct_returns_counts_sentinels_out() {
        let trace = vec![
            TraceEvent::Return { actual_target: 4 },
            TraceEvent::Return {
                actual_target: u64::MAX,
            },
        ];
        assert_eq!(SyntheticTrace::correct_returns(&trace), 1);
    }
}
