//! Shadow-state capacity modeling.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A counting budget for in-flight branch checkpoints, modeling the
/// limited per-branch shadow storage of real processors.
///
/// The paper notes the MIPS R10000 can shadow only **4** in-flight
/// branches and the Alpha 21264 **20**; when the shadow storage is full
/// the front end must stall (or forgo repair for the excess branches).
/// The pipeline consults this budget at prediction time.
///
/// # Examples
///
/// ```
/// use ras_core::CheckpointBudget;
///
/// let mut budget = CheckpointBudget::limited(2);
/// assert!(budget.try_acquire());
/// assert!(budget.try_acquire());
/// assert!(!budget.try_acquire()); // full: stall or skip repair
/// budget.release();
/// assert!(budget.try_acquire());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointBudget {
    capacity: Option<usize>,
    in_flight: usize,
}

impl CheckpointBudget {
    /// A budget that never runs out (idealized shadow storage).
    pub fn unlimited() -> Self {
        CheckpointBudget {
            capacity: None,
            in_flight: 0,
        }
    }

    /// A budget of exactly `capacity` simultaneous checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use a [`RepairPolicy::None`]
    /// configuration instead of a zero budget).
    ///
    /// [`RepairPolicy::None`]: crate::RepairPolicy::None
    pub fn limited(capacity: usize) -> Self {
        assert!(capacity > 0, "checkpoint budget capacity must be > 0");
        CheckpointBudget {
            capacity: Some(capacity),
            in_flight: 0,
        }
    }

    /// Maximum simultaneous checkpoints, or `None` if unlimited.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Checkpoints currently outstanding.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether another checkpoint can be taken right now.
    pub fn available(&self) -> bool {
        match self.capacity {
            None => true,
            Some(cap) => self.in_flight < cap,
        }
    }

    /// Attempts to reserve one checkpoint slot. Returns `false` (and
    /// reserves nothing) when the shadow storage is full.
    pub fn try_acquire(&mut self) -> bool {
        if self.available() {
            self.in_flight += 1;
            true
        } else {
            false
        }
    }

    /// Releases one slot (the branch resolved or was squashed).
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is outstanding — that indicates a pipeline
    /// accounting bug.
    pub fn release(&mut self) {
        assert!(self.in_flight > 0, "release without matching acquire");
        self.in_flight -= 1;
    }

    /// Releases `n` slots at once (bulk squash).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` checkpoints are outstanding.
    pub fn release_many(&mut self, n: usize) {
        assert!(self.in_flight >= n, "release of {n} exceeds in-flight");
        self.in_flight -= n;
    }
}

impl Default for CheckpointBudget {
    fn default() -> Self {
        CheckpointBudget::unlimited()
    }
}

impl fmt::Display for CheckpointBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.capacity {
            None => write!(f, "{} in flight (unlimited)", self.in_flight),
            Some(cap) => write!(f, "{}/{cap} in flight", self.in_flight),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut b = CheckpointBudget::unlimited();
        for _ in 0..1000 {
            assert!(b.try_acquire());
        }
        assert_eq!(b.in_flight(), 1000);
        assert_eq!(b.capacity(), None);
    }

    #[test]
    fn limited_exhausts_and_recovers() {
        let mut b = CheckpointBudget::limited(4); // R10000
        for _ in 0..4 {
            assert!(b.try_acquire());
        }
        assert!(!b.try_acquire());
        assert_eq!(b.in_flight(), 4);
        b.release();
        assert!(b.available());
        assert!(b.try_acquire());
    }

    #[test]
    fn release_many_bulk_squash() {
        let mut b = CheckpointBudget::limited(20); // 21264
        for _ in 0..10 {
            b.try_acquire();
        }
        b.release_many(7);
        assert_eq!(b.in_flight(), 3);
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn unbalanced_release_panics() {
        CheckpointBudget::unlimited().release();
    }

    #[test]
    #[should_panic(expected = "exceeds in-flight")]
    fn excess_release_many_panics() {
        let mut b = CheckpointBudget::limited(4);
        b.try_acquire();
        b.release_many(2);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_panics() {
        let _ = CheckpointBudget::limited(0);
    }

    #[test]
    fn default_is_unlimited() {
        assert_eq!(CheckpointBudget::default().capacity(), None);
    }

    #[test]
    fn display_both_forms() {
        let mut b = CheckpointBudget::limited(4);
        b.try_acquire();
        assert_eq!(b.to_string(), "1/4 in flight");
        assert!(CheckpointBudget::unlimited()
            .to_string()
            .contains("unlimited"));
    }
}
