//! The Jourdan et al. self-checkpointing return-address stack.
//!
//! The paper's closest related work (Jourdan, Stark, Hsing, Patt —
//! *"Recovery requirements of branch prediction storage structures..."*,
//! 1997) repairs the stack differently: instead of saving contents at
//! each branch, the stack **never overwrites live entries on pop**. Each
//! entry carries a pointer to the entry below it; a pop merely moves the
//! top-of-stack pointer down the chain, and a push allocates a *fresh*
//! slot linked to the current top. Repairing after a misprediction then
//! needs only the saved TOS pointer — the popped entries are still there.
//!
//! The cost, as the paper notes, is capacity: "[their scheme] requires a
//! larger number of stack entries than the methods proposed here because
//! it preserves popped entries." Wrong-path pushes and long-lived chains
//! consume slots; when allocation wraps around and reuses a slot that a
//! live chain still references, predictions through that chain are lost.
//! [`SelfCheckpointingStack`] detects a clobbered chain head at restore
//! time via per-entry sequence tags (deeper clobbers surface as ordinary
//! mispredictions, as they would in hardware).
//!
//! # Examples
//!
//! ```
//! use ras_core::SelfCheckpointingStack;
//!
//! let mut s = SelfCheckpointingStack::new(16);
//! s.push(0x40);
//! let ckpt = s.checkpoint();
//! // Wrong path pops the entry and pushes garbage...
//! s.pop();
//! s.push(0xdead);
//! // ...but the popped entry was preserved: pointer restore suffices.
//! s.restore(&ckpt);
//! assert_eq!(s.pop(), Some(0x40));
//! ```

use crate::stack::RasStats;
use serde::{Deserialize, Serialize};

/// Sentinel meaning "no entry" (empty stack / end of chain).
const NONE: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LinkEntry {
    addr: u64,
    /// Index of the entry below this one in its chain.
    below: usize,
    /// Allocation sequence tag, used to detect slot reuse.
    seq: u64,
}

/// A checkpoint of a [`SelfCheckpointingStack`]: just the TOS pointer and
/// its tag — one word of shadow state per branch, like the plain
/// TOS-pointer mechanism, but with full-checkpoint-quality repair as long
/// as the referenced chain has not been recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCheckpoint {
    tos: usize,
    tos_seq: u64,
}

/// The self-checkpointing (popped-entry-preserving) return-address stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelfCheckpointingStack {
    entries: Vec<LinkEntry>,
    tos: usize,
    /// Next slot to allocate (circular).
    alloc: usize,
    next_seq: u64,
    stats: RasStats,
}

impl SelfCheckpointingStack {
    /// Creates a stack with `capacity` physical entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "self-checkpointing stack capacity must be > 0"
        );
        SelfCheckpointingStack {
            entries: vec![
                LinkEntry {
                    addr: 0,
                    below: NONE,
                    seq: 0,
                };
                capacity
            ],
            tos: NONE,
            alloc: 0,
            next_seq: 1,
            stats: RasStats::default(),
        }
    }

    /// Number of physical entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Event statistics. `overflows` counts allocations that recycled a
    /// slot still reachable from the current chain.
    pub fn stats(&self) -> &RasStats {
        &self.stats
    }

    /// Resets the event statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RasStats::default();
    }

    /// Whether `slot` is reachable from the current TOS chain (bounded
    /// walk; used for overflow accounting).
    fn chain_contains(&self, slot: usize) -> bool {
        let mut cur = self.tos;
        for _ in 0..self.capacity() {
            if cur == NONE {
                return false;
            }
            if cur == slot {
                return true;
            }
            cur = self.entries[cur].below;
        }
        false
    }

    /// Pushes a return address into a freshly allocated slot (speculative,
    /// at fetch). Never overwrites the current top — that is the whole
    /// mechanism.
    pub fn push(&mut self, return_addr: u64) {
        self.stats.pushes += 1;
        let slot = self.alloc;
        self.alloc = (self.alloc + 1) % self.capacity();
        let overflow = self.chain_contains(slot);
        if overflow {
            // Recycling a live entry: the chain below it is damaged.
            self.stats.overflows += 1;
        }
        hydra_trace::trace_event!(hydra_trace::TraceEvent::RasPush {
            cycle: hydra_trace::clock::cycle(),
            hart: hydra_trace::clock::hart(),
            path: hydra_trace::clock::path(),
            addr: return_addr,
            overflow,
        });
        self.entries[slot] = LinkEntry {
            addr: return_addr,
            below: if self.tos == slot { NONE } else { self.tos },
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.tos = slot;
    }

    /// Pops the predicted return target (speculative, at fetch). The
    /// entry is *not* erased — only the pointer moves.
    pub fn pop(&mut self) -> Option<u64> {
        self.stats.pops += 1;
        if self.tos == NONE {
            self.stats.underflows += 1;
            hydra_trace::trace_event!(hydra_trace::TraceEvent::RasPop {
                cycle: hydra_trace::clock::cycle(),
                hart: hydra_trace::clock::hart(),
                path: hydra_trace::clock::path(),
                addr: 0,
                valid: false,
                underflow: true,
            });
            return None;
        }
        let e = self.entries[self.tos];
        self.tos = e.below;
        hydra_trace::trace_event!(hydra_trace::TraceEvent::RasPop {
            cycle: hydra_trace::clock::cycle(),
            hart: hydra_trace::clock::hart(),
            path: hydra_trace::clock::path(),
            addr: e.addr,
            valid: true,
            underflow: false,
        });
        Some(e.addr)
    }

    /// The prediction a pop would return, without popping.
    pub fn peek(&self) -> Option<u64> {
        (self.tos != NONE).then(|| self.entries[self.tos].addr)
    }

    /// Saves the TOS pointer (one word of shadow state per branch).
    pub fn checkpoint(&mut self) -> LinkCheckpoint {
        self.stats.checkpoints += 1;
        hydra_trace::trace_event!(hydra_trace::TraceEvent::RasSave {
            cycle: hydra_trace::clock::cycle(),
            hart: hydra_trace::clock::hart(),
            path: hydra_trace::clock::path(),
            policy: "self-ckpt",
            words: 1,
        });
        LinkCheckpoint {
            tos: self.tos,
            tos_seq: if self.tos == NONE {
                0
            } else {
                self.entries[self.tos].seq
            },
        }
    }

    /// Repairs the stack after a misprediction by restoring the saved
    /// pointer. If the referenced slot has been recycled since the
    /// checkpoint (detected by its tag), the stack is left empty-at-top —
    /// the chain is gone.
    pub fn restore(&mut self, ckpt: &LinkCheckpoint) {
        self.stats.restores += 1;
        hydra_trace::trace_event!(hydra_trace::TraceEvent::RasRepair {
            cycle: hydra_trace::clock::cycle(),
            hart: hydra_trace::clock::hart(),
            path: hydra_trace::clock::path(),
            policy: "self-ckpt",
        });
        if ckpt.tos == NONE {
            self.tos = NONE;
        } else if self.entries[ckpt.tos].seq == ckpt.tos_seq {
            self.tos = ckpt.tos;
        } else {
            // The checkpointed chain head was recycled by interleaving
            // pushes: nothing to predict from.
            self.tos = NONE;
        }
    }

    /// Creates an independent copy for a forked execution path, with
    /// statistics reset.
    pub fn fork(&self) -> Self {
        let mut copy = self.clone();
        copy.reset_stats();
        copy
    }

    /// [`SelfCheckpointingStack::fork`] into an existing (pooled) stack:
    /// copies this stack's state over `dst` reusing `dst`'s entry buffer,
    /// so forking a path costs no heap allocation. Statistics on `dst`
    /// are reset, exactly as `fork` does.
    pub fn fork_into(&self, dst: &mut Self) {
        dst.entries.clear();
        dst.entries.extend_from_slice(&self.entries);
        dst.tos = self.tos;
        dst.alloc = self.alloc;
        dst.next_seq = self.next_seq;
        dst.stats = RasStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_without_speculation() {
        let mut s = SelfCheckpointingStack::new(8);
        for a in [1u64, 2, 3] {
            s.push(a);
        }
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        assert_eq!(s.stats().underflows, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_panics() {
        let _ = SelfCheckpointingStack::new(0);
    }

    #[test]
    fn pointer_restore_repairs_pop_and_push() {
        // The corruption pattern TosPointer alone cannot repair: the
        // wrong path pops a good entry AND pushes over (what would be)
        // its slot. Preserved entries make the pointer sufficient.
        let mut s = SelfCheckpointingStack::new(8);
        s.push(0x10);
        s.push(0x20);
        let ckpt = s.checkpoint();
        s.pop();
        s.pop();
        s.push(0xbad1);
        s.push(0xbad2);
        s.restore(&ckpt);
        assert_eq!(s.pop(), Some(0x20));
        assert_eq!(s.pop(), Some(0x10));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn nested_checkpoints_restore_lifo() {
        let mut s = SelfCheckpointingStack::new(16);
        s.push(1);
        let outer = s.checkpoint();
        s.push(2);
        let inner = s.checkpoint();
        s.pop();
        s.pop();
        s.push(99);
        s.restore(&inner);
        assert_eq!(s.peek(), Some(2));
        s.restore(&outer);
        assert_eq!(s.peek(), Some(1));
    }

    #[test]
    fn recycled_chain_head_is_detected() {
        // Capacity 2: enough wrong-path pushes recycle the checkpointed
        // slot; restore must detect the stale tag and miss safely.
        let mut s = SelfCheckpointingStack::new(2);
        s.push(0x10);
        let ckpt = s.checkpoint();
        s.push(0xbad1); // slot 1
        s.push(0xbad2); // slot 0 — recycles 0x10's slot
        assert!(s.stats().overflows > 0);
        s.restore(&ckpt);
        assert_eq!(s.peek(), None, "clobbered chain yields no prediction");
    }

    #[test]
    fn preserved_entries_cost_capacity() {
        // The same workload on the circular stack needs fewer entries:
        // here, pushes after pops keep consuming fresh slots.
        let mut s = SelfCheckpointingStack::new(4);
        for round in 0..4u64 {
            s.push(round);
            s.pop();
        }
        // 4 pushes with interleaved pops: allocation has wrapped.
        s.push(100);
        s.push(101); // would recycle slot of a *dead* chain: no overflow
        assert_eq!(s.pop(), Some(101));
        assert_eq!(s.pop(), Some(100));
    }

    #[test]
    fn empty_checkpoint_round_trip() {
        let mut s = SelfCheckpointingStack::new(4);
        let ckpt = s.checkpoint();
        s.push(5);
        s.restore(&ckpt);
        assert_eq!(s.peek(), None);
    }

    #[test]
    fn fork_is_independent() {
        let mut s = SelfCheckpointingStack::new(8);
        s.push(7);
        let mut f = s.fork();
        assert_eq!(f.stats().pushes, 0);
        f.push(8);
        assert_eq!(s.peek(), Some(7));
        assert_eq!(f.pop(), Some(8));
        assert_eq!(f.pop(), Some(7));
    }

    #[test]
    fn capacity_accessor() {
        assert_eq!(SelfCheckpointingStack::new(12).capacity(), 12);
    }
}
