//! The hardware return-address stack structure.

use crate::repair::{RasCheckpoint, RepairPolicy, SavedContents};
use serde::{Deserialize, Serialize};

/// One physical stack entry.
///
/// Besides the predicted return address, each entry carries the push
/// sequence number used by the [`RepairPolicy::ValidBits`] detection
/// mechanism (the "identifiers for each in-flight branch" the paper
/// describes for the Pentium MMX/II scheme) and its validity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Entry {
    pub(crate) addr: u64,
    pub(crate) seq: u64,
    pub(crate) valid: bool,
}

/// Usage and event statistics for one stack.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasStats {
    /// Number of pushes.
    pub pushes: u64,
    /// Number of pops.
    pub pops: u64,
    /// Pushes that overwrote a live entry (stack was full).
    pub overflows: u64,
    /// Pops from an (architecturally) empty stack.
    pub underflows: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Restores applied.
    pub restores: u64,
}

/// A hardware-style return-address stack: a circular buffer of predicted
/// return addresses with a top-of-stack (TOS) pointer.
///
/// Matches the structures in real processors (Alpha 21164/21264, Pentium
/// II) as the paper describes them:
///
/// * **push** advances the TOS pointer and writes the entry, silently
///   overwriting the oldest entry when the stack is full (*overflow*);
/// * **pop** reads the entry at TOS and retreats the pointer; popping an
///   architecturally empty stack returns whatever stale value the wrapped
///   pointer finds (*underflow*) rather than faulting;
/// * a saturating depth counter is maintained **for statistics only** — the
///   hardware has no such counter, and prediction behaviour never consults
///   it.
///
/// Repair is performed with [`ReturnAddressStack::checkpoint`] /
/// [`ReturnAddressStack::restore`]; see [`RepairPolicy`] for the menu of
/// mechanisms.
///
/// # Examples
///
/// ```
/// use ras_core::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(0x100);
/// ras.push(0x200);
/// assert_eq!(ras.pop(), Some(0x200));
/// assert_eq!(ras.pop(), Some(0x100));
/// assert_eq!(ras.stats().underflows, 0);
/// ras.pop(); // empty: underflow, stale data
/// assert_eq!(ras.stats().underflows, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReturnAddressStack {
    entries: Vec<Entry>,
    tos: usize,
    depth: usize,
    next_seq: u64,
    stats: RasStats,
}

impl ReturnAddressStack {
    /// Creates a stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "return-address stack capacity must be > 0");
        ReturnAddressStack {
            entries: vec![Entry::default(); capacity],
            tos: capacity - 1, // so the first push lands on index 0
            depth: 0,
            next_seq: 1,
            stats: RasStats::default(),
        }
    }

    /// Number of physical entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Architectural depth estimate (saturates at capacity, floors at 0).
    /// Statistics only; the hardware structure never consults it.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Event statistics.
    pub fn stats(&self) -> &RasStats {
        &self.stats
    }

    /// Resets the event statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = RasStats::default();
    }

    /// Pushes a predicted return address (speculative, at fetch).
    pub fn push(&mut self, return_addr: u64) {
        self.stats.pushes += 1;
        let overflow = self.depth == self.capacity();
        if overflow {
            self.stats.overflows += 1;
        } else {
            self.depth += 1;
        }
        self.tos = (self.tos + 1) % self.capacity();
        self.entries[self.tos] = Entry {
            addr: return_addr,
            seq: self.next_seq,
            valid: true,
        };
        self.next_seq += 1;
        hydra_trace::trace_event!(hydra_trace::TraceEvent::RasPush {
            cycle: hydra_trace::clock::cycle(),
            hart: hydra_trace::clock::hart(),
            path: hydra_trace::clock::path(),
            addr: return_addr,
            overflow,
        });
    }

    /// Pops the predicted return target (speculative, at fetch).
    ///
    /// Returns `None` only when the entry at TOS has been *invalidated* by
    /// the [`RepairPolicy::ValidBits`] mechanism (the front end then falls
    /// back to the BTB). An architecturally empty stack still returns the
    /// stale wrapped value, as real hardware does — that stale value is
    /// simply likely to be wrong.
    pub fn pop(&mut self) -> Option<u64> {
        self.stats.pops += 1;
        let underflow = self.depth == 0;
        if underflow {
            self.stats.underflows += 1;
        } else {
            self.depth -= 1;
        }
        let entry = self.entries[self.tos];
        self.tos = (self.tos + self.capacity() - 1) % self.capacity();
        hydra_trace::trace_event!(hydra_trace::TraceEvent::RasPop {
            cycle: hydra_trace::clock::cycle(),
            hart: hydra_trace::clock::hart(),
            path: hydra_trace::clock::path(),
            addr: entry.addr,
            valid: entry.valid,
            underflow,
        });
        entry.valid.then_some(entry.addr)
    }

    /// The prediction a pop would return, without popping.
    pub fn peek(&self) -> Option<u64> {
        let entry = self.entries[self.tos];
        entry.valid.then_some(entry.addr)
    }

    /// Takes a checkpoint sufficient to repair this stack later under
    /// `policy`. Cheap for the pointer policies, O(capacity) only for
    /// [`RepairPolicy::FullStack`].
    pub fn checkpoint(&mut self, policy: RepairPolicy) -> RasCheckpoint {
        self.stats.checkpoints += 1;
        let saved = match policy {
            RepairPolicy::None | RepairPolicy::ValidBits | RepairPolicy::TosPointer => {
                SavedContents::None
            }
            RepairPolicy::TosPointerAndContents => self.save_top_one(),
            RepairPolicy::TopContents { k } => {
                if k.min(self.capacity()) == 1 {
                    self.save_top_one()
                } else {
                    SavedContents::Top(self.save_top(k))
                }
            }
            RepairPolicy::FullStack => SavedContents::Full(self.entries.clone()),
        };
        let ckpt = RasCheckpoint {
            policy,
            tos: self.tos,
            depth: self.depth,
            seq_horizon: self.next_seq,
            saved,
        };
        hydra_trace::trace_event!(hydra_trace::TraceEvent::RasSave {
            cycle: hydra_trace::clock::cycle(),
            hart: hydra_trace::clock::hart(),
            path: hydra_trace::clock::path(),
            policy: policy.short_name(),
            words: ckpt.storage_words() as u64,
        });
        ckpt
    }

    /// The `k = 1` save, stored inline (no heap allocation per branch).
    fn save_top_one(&self) -> SavedContents {
        SavedContents::TopOne(self.tos, self.entries[self.tos])
    }

    fn save_top(&self, k: usize) -> Vec<(usize, Entry)> {
        let k = k.min(self.capacity());
        (0..k)
            .map(|i| {
                let idx = (self.tos + self.capacity() - i) % self.capacity();
                (idx, self.entries[idx])
            })
            .collect()
    }

    /// Repairs the stack from a checkpoint after a misprediction, applying
    /// exactly what the checkpoint's policy saved:
    ///
    /// * `None` — nothing happens (corruption persists);
    /// * `ValidBits` — the TOS pointer is restored and entries the wrong
    ///   path *overwrote* are invalidated (they yield no prediction
    ///   rather than a bogus target; the lost contents are gone);
    /// * `TosPointer` — TOS pointer (and depth estimate) restored;
    ///   overwritten contents stay corrupt;
    /// * `TosPointerAndContents` / `TopContents` — pointer plus the saved
    ///   top entries restored;
    /// * `FullStack` — the entire stack image restored.
    pub fn restore(&mut self, ckpt: &RasCheckpoint) {
        self.stats.restores += 1;
        hydra_trace::trace_event!(hydra_trace::TraceEvent::RasRepair {
            cycle: hydra_trace::clock::cycle(),
            hart: hydra_trace::clock::hart(),
            path: hydra_trace::clock::path(),
            policy: ckpt.policy.short_name(),
        });
        match ckpt.policy {
            RepairPolicy::None => {}
            RepairPolicy::ValidBits => {
                // Detection-style repair: the TOS pointer comes back with
                // the branch's shadow fetch state, and the per-entry tags
                // identify slots the wrong path overwrote — those are
                // invalidated (their original contents are gone) so they
                // yield no prediction instead of a bogus target.
                self.tos = ckpt.tos;
                self.depth = ckpt.depth;
                for e in &mut self.entries {
                    if e.seq >= ckpt.seq_horizon {
                        e.valid = false;
                    }
                }
            }
            RepairPolicy::TosPointer => {
                self.tos = ckpt.tos;
                self.depth = ckpt.depth;
            }
            RepairPolicy::TosPointerAndContents
            | RepairPolicy::TopContents { .. }
            | RepairPolicy::FullStack => {
                self.tos = ckpt.tos;
                self.depth = ckpt.depth;
                match &ckpt.saved {
                    SavedContents::None => {}
                    SavedContents::TopOne(idx, entry) => {
                        self.entries[*idx] = *entry;
                    }
                    SavedContents::Top(saved) => {
                        for &(idx, entry) in saved {
                            self.entries[idx] = entry;
                        }
                    }
                    SavedContents::Full(entries) => {
                        self.entries.clone_from(entries);
                    }
                }
            }
        }
    }

    /// Creates an independent copy for a forked execution path (the
    /// per-path-stack organization for multipath processors). Statistics
    /// are reset on the copy so each path accounts its own events.
    pub fn fork(&self) -> Self {
        let mut copy = self.clone();
        copy.reset_stats();
        copy
    }

    /// [`ReturnAddressStack::fork`] into an existing (pooled) stack:
    /// copies this stack's state over `dst` reusing `dst`'s entry buffer,
    /// so forking a path costs no heap allocation. Statistics on `dst`
    /// are reset, exactly as `fork` does.
    pub fn fork_into(&self, dst: &mut Self) {
        dst.entries.clear();
        dst.entries.extend_from_slice(&self.entries);
        dst.tos = self.tos;
        dst.depth = self.depth;
        dst.next_seq = self.next_seq;
        dst.stats = RasStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = ReturnAddressStack::new(8);
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.depth(), 3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_panics() {
        let _ = ReturnAddressStack::new(0);
    }

    #[test]
    fn overflow_wraps_and_overwrites_oldest() {
        let mut s = ReturnAddressStack::new(2);
        s.push(1);
        s.push(2);
        s.push(3); // overwrites 1
        assert_eq!(s.stats().overflows, 1);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        // Architecturally empty; wrapped read returns stale garbage (3's
        // slot), counted as underflow.
        let stale = s.pop();
        assert_eq!(s.stats().underflows, 1);
        assert_eq!(stale, Some(3));
    }

    #[test]
    fn underflow_returns_stale_value_not_none() {
        let mut s = ReturnAddressStack::new(4);
        s.push(7);
        assert_eq!(s.pop(), Some(7));
        // Depth 0 now; pop wraps and reads whatever is there.
        let v = s.pop();
        assert_eq!(s.stats().underflows, 1);
        // Slot was never written -> default invalid entry -> None.
        assert_eq!(v, None);
    }

    #[test]
    fn peek_does_not_modify() {
        let mut s = ReturnAddressStack::new(4);
        s.push(5);
        assert_eq!(s.peek(), Some(5));
        assert_eq!(s.peek(), Some(5));
        assert_eq!(s.depth(), 1);
        assert_eq!(s.stats().pops, 0);
    }

    #[test]
    fn depth_saturates() {
        let mut s = ReturnAddressStack::new(2);
        for i in 0..5 {
            s.push(i);
        }
        assert_eq!(s.depth(), 2);
        for _ in 0..5 {
            s.pop();
        }
        assert_eq!(s.depth(), 0);
        assert_eq!(s.stats().underflows, 3);
    }

    #[test]
    fn no_repair_leaves_corruption() {
        let mut s = ReturnAddressStack::new(8);
        s.push(0x10);
        let ckpt = s.checkpoint(RepairPolicy::None);
        s.pop();
        s.push(0xbad);
        s.restore(&ckpt);
        assert_eq!(s.peek(), Some(0xbad));
    }

    #[test]
    fn tos_pointer_repairs_pops_but_not_overwrites() {
        let mut s = ReturnAddressStack::new(8);
        s.push(0x10);
        s.push(0x20);

        // Case 1: wrong path only pops. Pointer restore is enough.
        let ckpt = s.checkpoint(RepairPolicy::TosPointer);
        s.pop();
        s.pop();
        s.restore(&ckpt);
        assert_eq!(s.peek(), Some(0x20));
        assert_eq!(s.depth(), 2);

        // Case 2: wrong path pops then pushes (overwrites 0x20's slot).
        let ckpt = s.checkpoint(RepairPolicy::TosPointer);
        s.pop();
        s.push(0xbad); // lands exactly where 0x20 lived
        s.restore(&ckpt);
        assert_eq!(s.peek(), Some(0xbad), "contents stay corrupt");
    }

    #[test]
    fn tos_pointer_and_contents_repairs_single_overwrite() {
        let mut s = ReturnAddressStack::new(8);
        s.push(0x10);
        s.push(0x20);
        let ckpt = s.checkpoint(RepairPolicy::TosPointerAndContents);
        s.pop();
        s.push(0xbad);
        s.restore(&ckpt);
        assert_eq!(s.peek(), Some(0x20));
        assert_eq!(s.pop(), Some(0x20));
        assert_eq!(s.pop(), Some(0x10));
    }

    #[test]
    fn tos_pointer_and_contents_cannot_repair_deep_overwrite() {
        // Wrong path pops twice then pushes twice: the entry *below* TOS
        // is also overwritten and only full(er) checkpointing can fix it.
        let mut s = ReturnAddressStack::new(8);
        s.push(0x10);
        s.push(0x20);
        let ckpt = s.checkpoint(RepairPolicy::TosPointerAndContents);
        s.pop();
        s.pop();
        s.push(0xbad1);
        s.push(0xbad2);
        s.restore(&ckpt);
        assert_eq!(s.peek(), Some(0x20), "top entry repaired");
        s.pop();
        assert_eq!(s.peek(), Some(0xbad1), "second entry corrupt");
    }

    #[test]
    fn top_k_contents_repairs_k_deep() {
        let mut s = ReturnAddressStack::new(8);
        s.push(0x10);
        s.push(0x20);
        let ckpt = s.checkpoint(RepairPolicy::TopContents { k: 2 });
        s.pop();
        s.pop();
        s.push(0xbad1);
        s.push(0xbad2);
        s.restore(&ckpt);
        assert_eq!(s.pop(), Some(0x20));
        assert_eq!(s.pop(), Some(0x10));
    }

    #[test]
    fn top_k_larger_than_capacity_is_clamped() {
        let mut s = ReturnAddressStack::new(2);
        s.push(1);
        let ckpt = s.checkpoint(RepairPolicy::TopContents { k: 100 });
        s.push(2);
        s.push(3);
        s.restore(&ckpt);
        assert_eq!(s.peek(), Some(1));
    }

    #[test]
    fn full_stack_checkpoint_repairs_everything() {
        let mut s = ReturnAddressStack::new(4);
        for a in [1u64, 2, 3, 4] {
            s.push(a);
        }
        let ckpt = s.checkpoint(RepairPolicy::FullStack);
        for _ in 0..4 {
            s.pop();
        }
        for a in [9u64, 8, 7, 6] {
            s.push(a);
        }
        s.restore(&ckpt);
        assert_eq!(s.pop(), Some(4));
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
    }

    #[test]
    fn valid_bits_restore_pointer_and_survive_pure_push() {
        let mut s = ReturnAddressStack::new(8);
        s.push(0x10);
        let ckpt = s.checkpoint(RepairPolicy::ValidBits);
        s.push(0xbad); // wrong-path push into a fresh slot
        s.restore(&ckpt);
        // The pointer comes back and the old top was not overwritten.
        assert_eq!(s.peek(), Some(0x10));
    }

    #[test]
    fn valid_bits_detect_overwritten_slots() {
        let mut s = ReturnAddressStack::new(8);
        s.push(0x10);
        let ckpt = s.checkpoint(RepairPolicy::ValidBits);
        s.pop(); // wrong path pops the good entry...
        s.push(0xbad); // ...and overwrites its slot
        s.restore(&ckpt);
        // The pointer is back at the slot, but the tag shows the wrong
        // path clobbered it: detection yields no prediction rather than
        // the bogus 0xbad — contents cannot be recovered.
        assert_eq!(s.peek(), None);
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn valid_bits_do_not_invalidate_older_entries() {
        let mut s = ReturnAddressStack::new(8);
        s.push(0x10);
        s.push(0x20);
        let ckpt = s.checkpoint(RepairPolicy::ValidBits);
        s.restore(&ckpt); // nothing pushed on the wrong path
        assert_eq!(s.peek(), Some(0x20));
    }

    #[test]
    fn fork_copies_state_and_resets_stats() {
        let mut s = ReturnAddressStack::new(4);
        s.push(1);
        s.push(2);
        let f = s.fork();
        assert_eq!(f.peek(), Some(2));
        assert_eq!(f.depth(), 2);
        assert_eq!(f.stats().pushes, 0);
        // The two stacks are independent.
        let mut f = f;
        f.push(3);
        assert_eq!(s.peek(), Some(2));
        assert_eq!(f.peek(), Some(3));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut s = ReturnAddressStack::new(4);
        s.push(1);
        s.pop();
        let c = s.checkpoint(RepairPolicy::TosPointer);
        s.restore(&c);
        let st = *s.stats();
        assert_eq!(
            (st.pushes, st.pops, st.checkpoints, st.restores),
            (1, 1, 1, 1)
        );
        s.reset_stats();
        assert_eq!(s.stats().pushes, 0);
    }

    #[test]
    fn capacity_one_stack_works() {
        let mut s = ReturnAddressStack::new(1);
        s.push(5);
        s.push(6); // overwrite
        assert_eq!(s.pop(), Some(6));
        assert_eq!(s.stats().overflows, 1);
    }
}
