//! Stack organizations for multipath processors.

use crate::RepairPolicy;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a multipath processor organizes its return-address stack(s).
///
/// Multipath execution forks at low-confidence branches and runs both
/// sides simultaneously. The paper shows that with a single **unified**
/// stack, concurrently live paths push and pop over each other and
/// "corruption is almost certain, even with full-stack checkpointing";
/// giving each path its **own** stack ([`MultipathStackPolicy::PerPath`])
/// eliminates the contention entirely and improves performance by more
/// than 25%.
///
/// # Examples
///
/// ```
/// use ras_core::{MultipathStackPolicy, RepairPolicy};
///
/// let unified = MultipathStackPolicy::Unified {
///     repair: RepairPolicy::TosPointerAndContents,
/// };
/// assert!(!unified.is_per_path());
/// assert!(MultipathStackPolicy::PerPath.is_per_path());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultipathStackPolicy {
    /// One stack shared by all live paths, repaired on mispredictions with
    /// the given policy. Forked paths interleave their pushes and pops on
    /// the shared structure.
    Unified {
        /// Repair mechanism applied when a resolved branch squashes a path.
        repair: RepairPolicy,
    },
    /// Each live path owns a private copy of the stack, created by copying
    /// the parent's stack at the fork. Squashing a path simply discards
    /// its copy; no repair is ever needed.
    PerPath,
}

impl MultipathStackPolicy {
    /// Whether each path gets a private stack.
    pub fn is_per_path(self) -> bool {
        matches!(self, MultipathStackPolicy::PerPath)
    }

    /// The repair policy applied on squash, if the organization uses one.
    pub fn repair(self) -> Option<RepairPolicy> {
        match self {
            MultipathStackPolicy::Unified { repair } => Some(repair),
            MultipathStackPolicy::PerPath => None,
        }
    }

    /// The three organizations the paper's multipath evaluation compares.
    pub const EVALUATED: [MultipathStackPolicy; 3] = [
        MultipathStackPolicy::Unified {
            repair: RepairPolicy::None,
        },
        MultipathStackPolicy::Unified {
            repair: RepairPolicy::TosPointerAndContents,
        },
        MultipathStackPolicy::PerPath,
    ];
}

impl fmt::Display for MultipathStackPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultipathStackPolicy::Unified { repair } => write!(f, "unified ({repair})"),
            MultipathStackPolicy::PerPath => write!(f, "per-path stacks"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let u = MultipathStackPolicy::Unified {
            repair: RepairPolicy::FullStack,
        };
        assert!(!u.is_per_path());
        assert_eq!(u.repair(), Some(RepairPolicy::FullStack));
        assert!(MultipathStackPolicy::PerPath.is_per_path());
        assert_eq!(MultipathStackPolicy::PerPath.repair(), None);
    }

    #[test]
    fn evaluated_set_matches_paper() {
        assert_eq!(MultipathStackPolicy::EVALUATED.len(), 3);
        assert!(MultipathStackPolicy::EVALUATED
            .iter()
            .any(|p| p.is_per_path()));
    }

    #[test]
    fn display_distinct() {
        let mut names: Vec<String> = MultipathStackPolicy::EVALUATED
            .iter()
            .map(|p| p.to_string())
            .collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
