//! Trace-level evaluation of repair policies.
//!
//! The full cycle-level pipeline (crate `hydra-pipeline`) measures repair
//! mechanisms with real wrong-path execution. This module provides the
//! lightweight complement: replaying a *speculation event trace* against a
//! stack under a chosen policy. It is used by the property-test suite and
//! is a convenient public API for anyone who already has traces of fetch
//! activity (calls, returns, branch checkpoints, squashes).

use crate::{RasCheckpoint, RepairPolicy, ReturnAddressStack};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One fetch-order speculation event.
///
/// Checkpoint identifiers are chosen by the trace producer; a
/// `ResolveWrong { id }` restores the stack to the matching
/// `Predict { id }` point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A call was fetched; pushes `return_addr`.
    Call {
        /// The address the matching return should target.
        return_addr: u64,
    },
    /// A return was fetched; pops a prediction and scores it against
    /// `actual_target`.
    Return {
        /// The architecturally correct target.
        actual_target: u64,
    },
    /// A conditional branch was predicted; takes checkpoint `id`.
    Predict {
        /// Trace-chosen checkpoint identifier.
        id: u64,
    },
    /// Branch `id` resolved correctly; its checkpoint is discarded.
    ResolveCorrect {
        /// Which branch resolved.
        id: u64,
    },
    /// Branch `id` resolved as mispredicted; the stack is repaired from
    /// its checkpoint.
    ResolveWrong {
        /// Which branch resolved.
        id: u64,
    },
}

/// Aggregated results of a trace replay.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOutcome {
    /// Returns replayed.
    pub returns: u64,
    /// Returns whose popped prediction matched the actual target.
    pub hits: u64,
    /// Returns for which the stack had no prediction (invalidated entry).
    pub no_prediction: u64,
}

impl TraceOutcome {
    /// Hit rate over all returns (no-prediction counts as a miss).
    pub fn hit_rate(&self) -> f64 {
        if self.returns == 0 {
            0.0
        } else {
            self.hits as f64 / self.returns as f64
        }
    }
}

impl fmt::Display for TraceOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} returns predicted ({:.2}%)",
            self.hits,
            self.returns,
            self.hit_rate() * 100.0
        )
    }
}

/// Replays speculation event traces against a [`ReturnAddressStack`]
/// under one [`RepairPolicy`].
///
/// # Examples
///
/// A wrong path that pops a good entry, repaired by the paper's mechanism:
///
/// ```
/// use ras_core::{RepairPolicy, TraceEvent, TraceReplayer};
///
/// let mut r = TraceReplayer::new(16, RepairPolicy::TosPointerAndContents);
/// r.replay(&[
///     TraceEvent::Call { return_addr: 0x40 },
///     TraceEvent::Predict { id: 0 },
///     // wrong path: a return and a call that will be squashed
///     TraceEvent::Return { actual_target: 0x40 },
///     TraceEvent::Call { return_addr: 0xbad },
///     TraceEvent::ResolveWrong { id: 0 },
///     // correct path: the real return
///     TraceEvent::Return { actual_target: 0x40 },
/// ]);
/// // Both pops scored; the post-repair one hits.
/// assert_eq!(r.outcome().returns, 2);
/// assert_eq!(r.outcome().hits, 2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    ras: ReturnAddressStack,
    policy: RepairPolicy,
    checkpoints: HashMap<u64, RasCheckpoint>,
    outcome: TraceOutcome,
}

impl TraceReplayer {
    /// Creates a replayer over a fresh stack of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: RepairPolicy) -> Self {
        TraceReplayer {
            ras: ReturnAddressStack::new(capacity),
            policy,
            checkpoints: HashMap::new(),
            outcome: TraceOutcome::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RepairPolicy {
        self.policy
    }

    /// The underlying stack (for inspection).
    pub fn stack(&self) -> &ReturnAddressStack {
        &self.ras
    }

    /// Results so far.
    pub fn outcome(&self) -> TraceOutcome {
        self.outcome
    }

    /// Applies a single event.
    pub fn apply(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Call { return_addr } => self.ras.push(return_addr),
            TraceEvent::Return { actual_target } => {
                self.outcome.returns += 1;
                match self.ras.pop() {
                    Some(predicted) if predicted == actual_target => self.outcome.hits += 1,
                    Some(_) => {}
                    None => self.outcome.no_prediction += 1,
                }
            }
            TraceEvent::Predict { id } => {
                let ckpt = self.ras.checkpoint(self.policy);
                self.checkpoints.insert(id, ckpt);
            }
            TraceEvent::ResolveCorrect { id } => {
                self.checkpoints.remove(&id);
            }
            TraceEvent::ResolveWrong { id } => {
                if let Some(ckpt) = self.checkpoints.remove(&id) {
                    self.ras.restore(&ckpt);
                }
            }
        }
    }

    /// Applies a sequence of events. The event index doubles as the
    /// trace clock, so RAS events recorded during a replay line up with
    /// positions in the synthetic trace.
    pub fn replay(&mut self, events: &[TraceEvent]) {
        for (i, &e) in events.iter().enumerate() {
            hydra_trace::trace_cycle!(i as u64);
            self.apply(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrong_path_burst(n_pops: usize, n_pushes: usize, id: u64) -> Vec<TraceEvent> {
        let mut v = vec![TraceEvent::Predict { id }];
        for _ in 0..n_pops {
            v.push(TraceEvent::Return {
                actual_target: u64::MAX, // never matches: wrong-path pop
            });
        }
        for i in 0..n_pushes {
            v.push(TraceEvent::Call {
                return_addr: 0xbad0 + i as u64,
            });
        }
        v.push(TraceEvent::ResolveWrong { id });
        v
    }

    /// Nested calls, a wrong path, then unwind the real calls.
    fn scenario(policy: RepairPolicy, pops: usize, pushes: usize) -> TraceOutcome {
        let mut r = TraceReplayer::new(32, policy);
        for d in 0..4u64 {
            r.apply(TraceEvent::Call {
                return_addr: 0x100 + d,
            });
        }
        r.replay(&wrong_path_burst(pops, pushes, 7));
        // Unwind only the 4 real returns; ignore the wrong-path pops in
        // the outcome by measuring fresh.
        let before = r.outcome();
        for d in (0..4u64).rev() {
            r.apply(TraceEvent::Return {
                actual_target: 0x100 + d,
            });
        }
        let after = r.outcome();
        TraceOutcome {
            returns: after.returns - before.returns,
            hits: after.hits - before.hits,
            no_prediction: after.no_prediction - before.no_prediction,
        }
    }

    #[test]
    fn clean_trace_is_perfect_under_any_policy() {
        for policy in RepairPolicy::EVALUATED {
            let mut r = TraceReplayer::new(8, policy);
            for d in 0..5u64 {
                r.apply(TraceEvent::Call { return_addr: d });
            }
            for d in (0..5u64).rev() {
                r.apply(TraceEvent::Return { actual_target: d });
            }
            assert_eq!(r.outcome().hits, 5, "policy {policy}");
            assert_eq!(r.outcome().hit_rate(), 1.0);
        }
    }

    #[test]
    fn no_repair_suffers_from_wrong_path_pop() {
        let o = scenario(RepairPolicy::None, 1, 0);
        assert!(o.hits < 4, "a good entry was lost: {o}");
    }

    #[test]
    fn tos_pointer_repairs_pop_only_corruption() {
        let o = scenario(RepairPolicy::TosPointer, 2, 0);
        assert_eq!(o.hits, 4);
    }

    #[test]
    fn tos_pointer_fails_on_pop_then_push() {
        let o = scenario(RepairPolicy::TosPointer, 1, 1);
        assert_eq!(o.hits, 3, "overwritten top not repaired");
    }

    #[test]
    fn ptr_and_contents_repairs_pop_then_push() {
        let o = scenario(RepairPolicy::TosPointerAndContents, 1, 1);
        assert_eq!(o.hits, 4);
    }

    #[test]
    fn ptr_and_contents_fails_two_deep() {
        let o = scenario(RepairPolicy::TosPointerAndContents, 2, 2);
        assert_eq!(o.hits, 3);
    }

    #[test]
    fn top2_repairs_two_deep() {
        let o = scenario(RepairPolicy::TopContents { k: 2 }, 2, 2);
        assert_eq!(o.hits, 4);
    }

    #[test]
    fn full_stack_repairs_any_burst() {
        for (pops, pushes) in [(4, 4), (4, 8), (0, 32)] {
            let o = scenario(RepairPolicy::FullStack, pops, pushes);
            assert_eq!(o.hits, 4, "pops={pops} pushes={pushes}");
        }
    }

    #[test]
    fn valid_bits_repair_pure_push_corruption() {
        // Wrong path pushes into fresh slots: pointer restore realigns
        // the stack and nothing the correct path needs was overwritten.
        let o = scenario(RepairPolicy::ValidBits, 0, 2);
        assert_eq!(o.hits, 4);
    }

    #[test]
    fn valid_bits_detect_but_cannot_recover_overwrites() {
        // Wrong path pops one entry then pushes over it: the pointer is
        // repaired, and the clobbered slot is *detected* (no prediction)
        // rather than serving the bogus wrong-path address.
        let o = scenario(RepairPolicy::ValidBits, 1, 1);
        assert_eq!(o.hits, 3);
        assert_eq!(o.no_prediction, 1, "the overwritten slot was detected");
    }

    #[test]
    fn hit_rate_empty_is_zero() {
        assert_eq!(TraceOutcome::default().hit_rate(), 0.0);
    }

    #[test]
    fn resolve_unknown_id_is_ignored() {
        let mut r = TraceReplayer::new(4, RepairPolicy::FullStack);
        r.apply(TraceEvent::ResolveWrong { id: 99 });
        r.apply(TraceEvent::ResolveCorrect { id: 98 });
        assert_eq!(r.outcome().returns, 0);
    }

    #[test]
    fn accessors() {
        let r = TraceReplayer::new(4, RepairPolicy::TosPointer);
        assert_eq!(r.policy(), RepairPolicy::TosPointer);
        assert_eq!(r.stack().capacity(), 4);
        assert!(!r.outcome().to_string().is_empty());
    }

    #[test]
    fn nested_mispredictions_restore_in_lifo_order() {
        let mut r = TraceReplayer::new(16, RepairPolicy::FullStack);
        r.apply(TraceEvent::Call { return_addr: 0x1 });
        r.apply(TraceEvent::Predict { id: 0 });
        r.apply(TraceEvent::Call {
            return_addr: 0xbad1,
        });
        r.apply(TraceEvent::Predict { id: 1 });
        r.apply(TraceEvent::Call {
            return_addr: 0xbad2,
        });
        // Inner branch wrong, then outer branch wrong.
        r.apply(TraceEvent::ResolveWrong { id: 1 });
        r.apply(TraceEvent::ResolveWrong { id: 0 });
        r.apply(TraceEvent::Return { actual_target: 0x1 });
        assert_eq!(r.outcome().hits, 1);
    }
}
