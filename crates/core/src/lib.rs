//! Return-address-stack repair mechanisms.
//!
//! This crate is the primary contribution of *"Improving Prediction for
//! Procedure Returns with Return-Address-Stack Repair Mechanisms"*
//! (Skadron, Ahuja, Martonosi, Clark — MICRO-31, 1998), implemented as a
//! standalone library.
//!
//! # Background
//!
//! A return-address stack (RAS) predicts the target of procedure returns:
//! each call pushes its return address at fetch, each return pops the
//! predicted target at fetch. Because updates happen *speculatively* at
//! fetch, instructions on a mispredicted path push and pop the stack too —
//! and when that path is squashed, the stack is left corrupted. The paper
//! evaluates mechanisms that repair this corruption:
//!
//! * [`RepairPolicy::None`] — no repair; corruption persists (baseline).
//! * [`RepairPolicy::TosPointer`] — save/restore only the top-of-stack
//!   pointer per predicted branch (the Cyrix-patent mechanism). Repairs
//!   pops, but entries *overwritten* by wrong-path pushes stay corrupt.
//! * [`RepairPolicy::TosPointerAndContents`] — the paper's proposal: also
//!   save the top-of-stack *contents*. Nearly all single-branch corruption
//!   is repaired; hit rates approach 100%.
//! * [`RepairPolicy::TopContents`] — generalization saving the top *k*
//!   entries (the paper's data for "how much is enough").
//! * [`RepairPolicy::FullStack`] — checkpoint the whole stack per branch;
//!   the upper limit of this style of repair.
//! * [`RepairPolicy::ValidBits`] — the Pentium MMX/II-style mechanism:
//!   the TOS pointer is restored with the branch's shadow fetch state,
//!   and per-entry tags *detect* slots the wrong path overwrote; those
//!   yield no prediction (the front end falls back to its BTB) rather
//!   than a bogus wrong-path target, but the lost contents cannot be
//!   recovered.
//!
//! For multipath processors the paper shows a unified stack is corrupted
//! by contention between simultaneously-live paths even with full
//! checkpointing, and that per-path stacks ([`MultipathStackPolicy`])
//! eliminate the problem.
//!
//! The stack itself ([`ReturnAddressStack`]) is modeled exactly like the
//! hardware structure: a circular buffer that silently wraps on overflow
//! and underflow (as on the Alpha 21164), with saturating depth tracking
//! used only for statistics.
//!
//! # Examples
//!
//! Repairing corruption from a squashed wrong path:
//!
//! ```
//! use ras_core::{RepairPolicy, ReturnAddressStack};
//!
//! let mut ras = ReturnAddressStack::new(8);
//! ras.push(0x40); // correct-path call
//!
//! // A branch is predicted; checkpoint per the paper's mechanism.
//! let ckpt = ras.checkpoint(RepairPolicy::TosPointerAndContents);
//!
//! // Wrong path executes: pops the good entry, pushes garbage.
//! ras.pop();
//! ras.push(0xdead);
//!
//! // Branch resolves as mispredicted: repair.
//! ras.restore(&ckpt);
//! assert_eq!(ras.peek(), Some(0x40));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod jourdan;
mod multipath;
mod repair;
mod stack;
mod synth;
mod trace;

pub use budget::CheckpointBudget;
pub use jourdan::{LinkCheckpoint, SelfCheckpointingStack};
pub use multipath::MultipathStackPolicy;
pub use repair::{RasCheckpoint, RepairPolicy};
pub use stack::{RasStats, ReturnAddressStack};
pub use synth::SyntheticTrace;
pub use trace::{TraceEvent, TraceOutcome, TraceReplayer};
