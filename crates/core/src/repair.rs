//! Repair policies and checkpoints.

use crate::stack::Entry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The menu of return-address-stack repair mechanisms the paper evaluates.
///
/// Ordered roughly by hardware cost. See the crate-level documentation for
/// what each repairs and what it leaves corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// No repair at all (the corruption baseline).
    None,
    /// Pentium MMX/II-style detection: per-entry tags let wrong-path
    /// pushes be *invalidated* after a squash; nothing is restored.
    ValidBits,
    /// Save/restore only the top-of-stack pointer (Cyrix patent 5,706,491).
    TosPointer,
    /// Save/restore the TOS pointer **and** the top-of-stack entry — the
    /// paper's proposed mechanism ("nearly 100% hit rates").
    TosPointerAndContents,
    /// Save/restore the TOS pointer and the top `k` entries; `k = 1` is
    /// equivalent to [`RepairPolicy::TosPointerAndContents`].
    TopContents {
        /// How many top entries to save per checkpoint.
        k: usize,
    },
    /// Checkpoint the entire stack per predicted branch (upper limit).
    FullStack,
}

impl RepairPolicy {
    /// All distinct mechanisms the paper's single-path evaluation compares,
    /// in increasing hardware-cost order. (`TopContents` is a sweep knob
    /// rather than a distinct mechanism, so it is not listed.)
    pub const EVALUATED: [RepairPolicy; 5] = [
        RepairPolicy::None,
        RepairPolicy::ValidBits,
        RepairPolicy::TosPointer,
        RepairPolicy::TosPointerAndContents,
        RepairPolicy::FullStack,
    ];

    /// A compact machine-friendly name for trace events and filenames
    /// (the [`fmt::Display`] form has spaces).
    pub fn short_name(self) -> &'static str {
        match self {
            RepairPolicy::None => "none",
            RepairPolicy::ValidBits => "valid-bits",
            RepairPolicy::TosPointer => "tos-ptr",
            RepairPolicy::TosPointerAndContents => "tos+contents",
            RepairPolicy::TopContents { .. } => "top-k",
            RepairPolicy::FullStack => "full-stack",
        }
    }

    /// Words of shadow storage one checkpoint of this policy costs on a
    /// stack with `capacity` entries (the paper's hardware-cost argument:
    /// a TOS pointer is a few bits, full-stack checkpointing is huge).
    pub fn checkpoint_words(self, capacity: usize) -> usize {
        match self {
            RepairPolicy::None => 0,
            RepairPolicy::ValidBits => 0, // tags live in the stack itself
            RepairPolicy::TosPointer => 1,
            RepairPolicy::TosPointerAndContents => 2,
            RepairPolicy::TopContents { k } => 1 + k.min(capacity),
            RepairPolicy::FullStack => 1 + capacity,
        }
    }
}

impl fmt::Display for RepairPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairPolicy::None => write!(f, "no repair"),
            RepairPolicy::ValidBits => write!(f, "valid bits"),
            RepairPolicy::TosPointer => write!(f, "TOS pointer"),
            RepairPolicy::TosPointerAndContents => write!(f, "TOS ptr+contents"),
            RepairPolicy::TopContents { k } => write!(f, "top-{k} contents"),
            RepairPolicy::FullStack => write!(f, "full stack"),
        }
    }
}

/// What a checkpoint saved, private to the crate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum SavedContents {
    None,
    /// The single saved top entry — the common (`TosPointerAndContents`,
    /// `TopContents { k: 1 }`) case, stored inline so the per-branch
    /// checkpoint costs no heap allocation on the hot path.
    TopOne(usize, Entry),
    /// `(physical index, entry)` pairs for the saved top entries.
    Top(Vec<(usize, Entry)>),
    Full(Vec<Entry>),
}

/// Shadow state saved when a branch is predicted, sufficient to repair the
/// stack under the policy it was taken with.
///
/// Created by [`ReturnAddressStack::checkpoint`](crate::ReturnAddressStack::checkpoint)
/// and consumed by
/// [`ReturnAddressStack::restore`](crate::ReturnAddressStack::restore).
/// In a real processor this is the per-branch shadow state distributed
/// near the stack; [`CheckpointBudget`](crate::CheckpointBudget) models its
/// limited capacity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasCheckpoint {
    pub(crate) policy: RepairPolicy,
    pub(crate) tos: usize,
    pub(crate) depth: usize,
    /// Pushes with `seq >= seq_horizon` happened after this checkpoint.
    pub(crate) seq_horizon: u64,
    pub(crate) saved: SavedContents,
}

impl RasCheckpoint {
    /// The policy this checkpoint was taken under.
    pub fn policy(&self) -> RepairPolicy {
        self.policy
    }

    /// Words of shadow storage this particular checkpoint occupies.
    pub fn storage_words(&self) -> usize {
        match &self.saved {
            SavedContents::None => match self.policy {
                RepairPolicy::None | RepairPolicy::ValidBits => 0,
                _ => 1,
            },
            SavedContents::TopOne(..) => 2,
            SavedContents::Top(v) => 1 + v.len(),
            SavedContents::Full(v) => 1 + v.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReturnAddressStack;

    #[test]
    fn display_names_are_distinct() {
        let mut names: Vec<String> = RepairPolicy::EVALUATED
            .iter()
            .map(|p| p.to_string())
            .collect();
        names.push(RepairPolicy::TopContents { k: 4 }.to_string());
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn short_names_are_distinct_and_space_free() {
        let mut names: Vec<&str> = RepairPolicy::EVALUATED
            .iter()
            .map(|p| p.short_name())
            .collect();
        names.push(RepairPolicy::TopContents { k: 4 }.short_name());
        assert!(names.iter().all(|n| !n.contains(' ')));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn checkpoint_words_ordering() {
        let cap = 32;
        assert_eq!(RepairPolicy::None.checkpoint_words(cap), 0);
        assert_eq!(RepairPolicy::TosPointer.checkpoint_words(cap), 1);
        assert_eq!(RepairPolicy::TosPointerAndContents.checkpoint_words(cap), 2);
        assert_eq!(RepairPolicy::TopContents { k: 4 }.checkpoint_words(cap), 5);
        assert_eq!(RepairPolicy::FullStack.checkpoint_words(cap), cap + 1);
        // TopContents clamps to capacity.
        assert_eq!(RepairPolicy::TopContents { k: 100 }.checkpoint_words(8), 9);
    }

    #[test]
    fn checkpoint_reports_its_policy_and_size() {
        let mut s = ReturnAddressStack::new(16);
        s.push(1);
        let c = s.checkpoint(RepairPolicy::TosPointerAndContents);
        assert_eq!(c.policy(), RepairPolicy::TosPointerAndContents);
        assert_eq!(c.storage_words(), 2);

        let c = s.checkpoint(RepairPolicy::FullStack);
        assert_eq!(c.storage_words(), 17);

        let c = s.checkpoint(RepairPolicy::None);
        assert_eq!(c.storage_words(), 0);

        let c = s.checkpoint(RepairPolicy::TosPointer);
        assert_eq!(c.storage_words(), 1);
    }

    #[test]
    fn evaluated_list_is_cost_ordered() {
        let cap = 32;
        let costs: Vec<usize> = RepairPolicy::EVALUATED
            .iter()
            .map(|p| p.checkpoint_words(cap))
            .collect();
        let mut sorted = costs.clone();
        sorted.sort_unstable();
        assert_eq!(costs, sorted);
    }
}
