//! Property-based tests for the return-address stack and its repair
//! mechanisms.

use proptest::prelude::*;
use ras_core::{CheckpointBudget, RepairPolicy, ReturnAddressStack, SyntheticTrace, TraceReplayer};

/// A random stack operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(1u64..1000).prop_map(Op::Push), Just(Op::Pop),],
        0..64,
    )
}

fn apply(stack: &mut ReturnAddressStack, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Push(v) => stack.push(*v),
            Op::Pop => {
                stack.pop();
            }
        }
    }
}

proptest! {
    /// Depth is always within [0, capacity], and push/pop counts add up.
    #[test]
    fn depth_stays_bounded(capacity in 1usize..64, ops in ops()) {
        let mut s = ReturnAddressStack::new(capacity);
        let mut pushes = 0u64;
        let mut pops = 0u64;
        for op in &ops {
            match op {
                Op::Push(v) => { s.push(*v); pushes += 1; }
                Op::Pop => { s.pop(); pops += 1; }
            }
            prop_assert!(s.depth() <= capacity);
        }
        prop_assert_eq!(s.stats().pushes, pushes);
        prop_assert_eq!(s.stats().pops, pops);
    }

    /// Within capacity and without speculation, the hardware stack is a
    /// perfect LIFO: it matches a Vec model exactly.
    #[test]
    fn matches_vec_model_within_capacity(capacity in 1usize..64, ops in ops()) {
        let mut s = ReturnAddressStack::new(capacity);
        let mut model: Vec<u64> = Vec::new();
        for op in &ops {
            match op {
                Op::Push(v) => {
                    if model.len() < capacity {
                        s.push(*v);
                        model.push(*v);
                    }
                }
                Op::Pop => {
                    if !model.is_empty() {
                        prop_assert_eq!(s.pop(), model.pop());
                    }
                }
            }
        }
    }

    /// Full-stack restore returns the stack to *exactly* the checkpointed
    /// state, no matter what happened in between.
    #[test]
    fn full_restore_is_exact(capacity in 1usize..32, before in ops(), wrong in ops()) {
        let mut s = ReturnAddressStack::new(capacity);
        apply(&mut s, &before);
        let snapshot = s.clone();
        let ckpt = s.checkpoint(RepairPolicy::FullStack);
        apply(&mut s, &wrong);
        s.restore(&ckpt);
        // Contents, pointer and depth equal; stats may differ.
        let mut a = s.clone();
        let mut b = snapshot.clone();
        for _ in 0..capacity {
            prop_assert_eq!(a.pop(), b.pop());
        }
        prop_assert_eq!(s.depth(), snapshot.depth());
    }

    /// A restore with *no* intervening activity is observationally a
    /// no-op for every pointer-restoring policy.
    #[test]
    fn restore_without_corruption_is_identity(
        capacity in 1usize..32,
        before in ops(),
        policy_idx in 0usize..5,
    ) {
        let policy = RepairPolicy::EVALUATED[policy_idx];
        let mut s = ReturnAddressStack::new(capacity);
        apply(&mut s, &before);
        let peek_before = s.peek();
        let ckpt = s.checkpoint(policy);
        s.restore(&ckpt);
        prop_assert_eq!(s.peek(), peek_before);
    }

    /// `TopContents{k}` equals `FullStack` whenever the wrong path
    /// disturbs at most the top k entries (net pops+pushes both ≤ k and
    /// never below the checkpoint by more than k).
    #[test]
    fn top_k_equals_full_for_shallow_corruption(
        k in 1usize..5,
        depth in 5usize..16,
        wrong_pops in 0usize..5,
        wrong_pushes in 0usize..5,
    ) {
        prop_assume!(wrong_pops <= k && wrong_pushes <= wrong_pops);
        let capacity = 32;
        let mut a = ReturnAddressStack::new(capacity);
        for i in 0..depth as u64 {
            a.push(0x100 + i);
        }
        let mut b = a.clone();
        let ck_a = a.checkpoint(RepairPolicy::TopContents { k });
        let ck_b = b.checkpoint(RepairPolicy::FullStack);
        for _ in 0..wrong_pops { a.pop(); b.pop(); }
        for i in 0..wrong_pushes as u64 {
            a.push(0xbad + i);
            b.push(0xbad + i);
        }
        a.restore(&ck_a);
        b.restore(&ck_b);
        for _ in 0..depth {
            prop_assert_eq!(a.pop(), b.pop());
        }
    }

    /// Checkpoint storage cost matches the policy's advertised cost.
    #[test]
    fn checkpoint_cost_is_as_advertised(capacity in 1usize..64, policy_idx in 0usize..5) {
        let policy = RepairPolicy::EVALUATED[policy_idx];
        let mut s = ReturnAddressStack::new(capacity);
        s.push(1);
        let ckpt = s.checkpoint(policy);
        prop_assert_eq!(ckpt.storage_words(), policy.checkpoint_words(capacity));
        prop_assert_eq!(ckpt.policy(), policy);
    }

    /// The budget is a faithful counting semaphore.
    #[test]
    fn budget_counting(capacity in 1usize..32, acquires in 1usize..100) {
        let mut b = CheckpointBudget::limited(capacity);
        let mut held = 0usize;
        for _ in 0..acquires {
            if b.try_acquire() {
                held += 1;
            }
            prop_assert!(held <= capacity);
            prop_assert_eq!(b.in_flight(), held);
        }
        prop_assert_eq!(held, acquires.min(capacity));
        b.release_many(held);
        prop_assert_eq!(b.in_flight(), 0);
    }

    /// On synthetic traces, full-stack checkpointing scores every
    /// correct-path return, and the ladder never inverts between the
    /// extremes.
    #[test]
    fn full_repair_is_perfect_on_synthetic_traces(
        seed in 0u64..500,
        mispredict in 0.0f64..0.3,
        wp_hi in 2usize..60,
    ) {
        let trace = SyntheticTrace::builder()
            .events(5_000)
            .mispredict_rate(mispredict)
            .wrong_path_len(1, wp_hi)
            .seed(seed)
            .generate();
        let correct = SyntheticTrace::correct_returns(&trace);

        let mut full = TraceReplayer::new(64, RepairPolicy::FullStack);
        full.replay(&trace);
        prop_assert_eq!(full.outcome().hits, correct);

        let mut none = TraceReplayer::new(64, RepairPolicy::None);
        none.replay(&trace);
        prop_assert!(none.outcome().hits <= full.outcome().hits);
    }
}
