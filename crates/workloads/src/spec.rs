//! Per-benchmark generation profiles.

use serde::{Deserialize, Serialize};

/// A generation profile: every knob the generator uses to shape a
/// benchmark's control-flow character.
///
/// The eight entries of [`WorkloadSpec::spec95_suite`] model the SPECint95
/// members the paper evaluates. Values were chosen so the *measured*
/// dynamic properties (Table 2 of EXPERIMENTS.md) land near the published
/// SPECint95 characteristics: call densities of roughly 1–2% of
/// instructions, conditional-branch densities near 10–20%, and prediction
/// accuracies ordered go < gcc/ijpeg < compress/li < m88ksim/perl <
/// vortex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name (e.g. `"go"`).
    pub name: String,
    /// Number of generated functions (excluding `main` and the recursive
    /// helpers).
    pub functions: usize,
    /// Depth of the call DAG: functions are assigned levels `0..depth`
    /// and only call deeper levels, so call chains terminate.
    pub call_depth: usize,
    /// Straight-line ALU filler instructions per body segment
    /// `(min, max)`.
    pub filler: (usize, usize),
    /// Body segments per function `(min, max)`. Each segment is filler
    /// plus at most one feature (branch, loop, call, memory op).
    pub segments: (usize, usize),
    /// Weight of call-site segments. The five feature weights form a
    /// categorical distribution over segment contents (any remaining
    /// mass is a plain filler segment); weights are normalized if they
    /// sum past 1.0.
    pub call_prob: f64,
    /// Probability a call site is indirect (through the function-pointer
    /// table of leaf functions).
    pub indirect_frac: f64,
    /// Weight of *hard* (data-dependent) branch segments.
    pub hard_branch_prob: f64,
    /// Taken probability of hard branches (0..1, quantized to /256).
    pub hard_branch_takenness: f64,
    /// Weight of *easy* (heavily biased) branch segments.
    pub easy_branch_prob: f64,
    /// Weight of counted-loop segments (loop bodies never call).
    pub loop_prob: f64,
    /// Loop trip counts `(min, max)`.
    pub loop_iters: (u64, u64),
    /// Weight of load/store segments on the global region.
    pub mem_prob: f64,
    /// Maximum depth of the direct-recursive helper (0 disables it).
    pub recursion_depth: u64,
    /// Whether to generate a mutually-recursive helper pair.
    pub mutual_recursion: bool,
    /// Iterations of the top-level driver loop.
    pub outer_iterations: u64,
    /// Call sites in the driver-loop body.
    pub calls_in_main: usize,
    /// Entries in the indirect-call table (power of two).
    pub call_table_slots: usize,
    /// Data segment size in words.
    pub data_words: u64,
}

impl WorkloadSpec {
    /// A small, fast profile for unit tests and doc examples: a few
    /// functions, shallow recursion, a couple hundred outer iterations.
    pub fn test_small() -> Self {
        WorkloadSpec {
            name: "test-small".to_string(),
            functions: 8,
            call_depth: 3,
            filler: (2, 5),
            segments: (2, 4),
            call_prob: 0.5,
            indirect_frac: 0.2,
            hard_branch_prob: 0.3,
            hard_branch_takenness: 0.4,
            easy_branch_prob: 0.3,
            loop_prob: 0.2,
            loop_iters: (2, 5),
            mem_prob: 0.3,
            recursion_depth: 4,
            mutual_recursion: true,
            outer_iterations: 200,
            calls_in_main: 3,
            call_table_slots: 4,
            data_words: 16_384,
        }
    }

    /// The eight SPECint95 stand-ins the experiments run, in the paper's
    /// customary order.
    pub fn spec95_suite() -> Vec<WorkloadSpec> {
        vec![
            // go: enormous, branchy, hard-to-predict; few calls, shallow.
            WorkloadSpec {
                name: "go".to_string(),
                functions: 24,
                call_depth: 4,
                filler: (3, 8),
                segments: (4, 8),
                call_prob: 0.04,
                indirect_frac: 0.05,
                hard_branch_prob: 0.30,
                hard_branch_takenness: 0.50,
                easy_branch_prob: 0.15,
                loop_prob: 0.04,
                loop_iters: (2, 6),
                mem_prob: 0.16,
                recursion_depth: 2,
                mutual_recursion: false,
                outer_iterations: 2_000_000,
                calls_in_main: 8,
                call_table_slots: 8,
                data_words: 16_384,
            },
            // m88ksim: simulator main loop; predictable branches, regular
            // moderately deep call chains.
            WorkloadSpec {
                name: "m88ksim".to_string(),
                functions: 28,
                call_depth: 6,
                filler: (3, 7),
                segments: (3, 6),
                call_prob: 0.08,
                indirect_frac: 0.10,
                hard_branch_prob: 0.02,
                hard_branch_takenness: 0.50,
                easy_branch_prob: 0.32,
                loop_prob: 0.10,
                loop_iters: (3, 8),
                mem_prob: 0.25,
                recursion_depth: 0,
                mutual_recursion: false,
                outer_iterations: 2_000_000,
                calls_in_main: 4,
                call_table_slots: 8,
                data_words: 16_384,
            },
            // gcc: large code, many functions, fan-in everywhere, mixed
            // predictability, recursion (tree walks).
            WorkloadSpec {
                name: "gcc".to_string(),
                functions: 96,
                call_depth: 6,
                filler: (3, 8),
                segments: (3, 7),
                call_prob: 0.04,
                indirect_frac: 0.15,
                hard_branch_prob: 0.10,
                hard_branch_takenness: 0.50,
                easy_branch_prob: 0.28,
                loop_prob: 0.05,
                loop_iters: (2, 5),
                mem_prob: 0.22,
                recursion_depth: 12,
                mutual_recursion: true,
                outer_iterations: 2_000_000,
                calls_in_main: 4,
                call_table_slots: 16,
                data_words: 16_384,
            },
            // compress: tiny kernel, tight loops, few functions but the
            // ones it has are called from everywhere (bad for BTB
            // returns), moderately predictable.
            WorkloadSpec {
                name: "compress".to_string(),
                functions: 6,
                call_depth: 3,
                filler: (3, 6),
                segments: (3, 6),
                call_prob: 0.10,
                indirect_frac: 0.0,
                hard_branch_prob: 0.12,
                hard_branch_takenness: 0.55,
                easy_branch_prob: 0.25,
                loop_prob: 0.15,
                loop_iters: (4, 12),
                mem_prob: 0.30,
                recursion_depth: 0,
                mutual_recursion: false,
                outer_iterations: 3_000_000,
                calls_in_main: 3,
                call_table_slots: 4,
                data_words: 16_384,
            },
            // li: lisp interpreter; deep direct+mutual recursion, call
            // dominated, fairly predictable branches.
            WorkloadSpec {
                name: "li".to_string(),
                functions: 40,
                call_depth: 5,
                filler: (2, 5),
                segments: (2, 5),
                call_prob: 0.08,
                indirect_frac: 0.20,
                hard_branch_prob: 0.04,
                hard_branch_takenness: 0.50,
                easy_branch_prob: 0.28,
                loop_prob: 0.04,
                loop_iters: (2, 4),
                mem_prob: 0.15,
                recursion_depth: 24,
                mutual_recursion: true,
                outer_iterations: 2_000_000,
                calls_in_main: 5,
                call_table_slots: 16,
                data_words: 16_384,
            },
            // ijpeg: image kernels; loop-heavy, long straight-line runs,
            // few calls.
            WorkloadSpec {
                name: "ijpeg".to_string(),
                functions: 16,
                call_depth: 4,
                filler: (6, 14),
                segments: (4, 8),
                call_prob: 0.02,
                indirect_frac: 0.05,
                hard_branch_prob: 0.12,
                hard_branch_takenness: 0.50,
                easy_branch_prob: 0.15,
                loop_prob: 0.20,
                loop_iters: (6, 12),
                mem_prob: 0.28,
                recursion_depth: 0,
                mutual_recursion: false,
                outer_iterations: 2_000_000,
                calls_in_main: 4,
                call_table_slots: 4,
                data_words: 16_384,
            },
            // perl: interpreter dispatch; many indirect calls, deep
            // recursion, predictable-ish branches.
            WorkloadSpec {
                name: "perl".to_string(),
                functions: 56,
                call_depth: 6,
                filler: (2, 6),
                segments: (2, 5),
                call_prob: 0.06,
                indirect_frac: 0.30,
                hard_branch_prob: 0.03,
                hard_branch_takenness: 0.50,
                easy_branch_prob: 0.30,
                loop_prob: 0.05,
                loop_iters: (2, 5),
                mem_prob: 0.18,
                recursion_depth: 8,
                mutual_recursion: true,
                outer_iterations: 2_000_000,
                calls_in_main: 4,
                call_table_slots: 16,
                data_words: 16_384,
            },
            // vortex: OO database; call-return dominated, deep chains,
            // very predictable branches, heavy fan-in.
            WorkloadSpec {
                name: "vortex".to_string(),
                functions: 20,
                call_depth: 8,
                filler: (3, 9),
                segments: (2, 5),
                call_prob: 0.10,
                indirect_frac: 0.12,
                hard_branch_prob: 0.03,
                hard_branch_takenness: 0.50,
                easy_branch_prob: 0.30,
                loop_prob: 0.05,
                loop_iters: (2, 4),
                mem_prob: 0.18,
                recursion_depth: 0,
                mutual_recursion: false,
                outer_iterations: 2_000_000,
                calls_in_main: 5,
                call_table_slots: 8,
                data_words: 16_384,
            },
        ]
    }

    /// Looks up a suite profile by name.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        WorkloadSpec::spec95_suite()
            .into_iter()
            .find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_distinct_names() {
        let suite = WorkloadSpec::spec95_suite();
        assert_eq!(suite.len(), 8);
        let mut names: Vec<_> = suite.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn by_name_finds_members() {
        assert!(WorkloadSpec::by_name("gcc").is_some());
        assert!(WorkloadSpec::by_name("nonesuch").is_none());
    }

    #[test]
    fn go_is_least_predictable_vortex_most() {
        let go = WorkloadSpec::by_name("go").unwrap();
        let vortex = WorkloadSpec::by_name("vortex").unwrap();
        assert!(go.hard_branch_prob > vortex.hard_branch_prob);
    }

    #[test]
    fn probabilities_are_in_range() {
        for s in WorkloadSpec::spec95_suite() {
            for p in [
                s.call_prob,
                s.indirect_frac,
                s.hard_branch_prob,
                s.hard_branch_takenness,
                s.easy_branch_prob,
                s.loop_prob,
                s.mem_prob,
            ] {
                assert!((0.0..=1.0).contains(&p), "{}: {p}", s.name);
            }
            assert!(s.call_table_slots.is_power_of_two());
            assert!(s.filler.0 <= s.filler.1);
            assert!(s.segments.0 <= s.segments.1);
            assert!(s.loop_iters.0 <= s.loop_iters.1);
        }
    }
}
