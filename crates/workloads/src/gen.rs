//! The program generator.
//!
//! Register conventions of generated code (callee may clobber anything
//! except `r14` and `sp` discipline):
//!
//! | register | use |
//! |---|---|
//! | `r1..r7` | ALU filler scratch |
//! | `r8` | function-local loop counter (loop bodies never call) |
//! | `r9` | the global in-program LCG state driving all "random" data |
//! | `r10` | recursion-depth argument |
//! | `r11`, `r12` | branch-test and address temporaries |
//! | `r13` | indirect-call target |
//! | `r14` | `main`'s outer-loop counter (only `main` touches it) |
//! | `sp` (`r29`) | software stack pointer (grows upward from 0) |
//! | `ra` (`r31`) | link register, spilled by non-leaf functions |

use crate::WorkloadSpec;
use hydra_isa::{AluOp, BuildError, Cond, Label, Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Base word address of the global data region.
const GLOBAL_BASE: i64 = 2048;
/// Size mask of the global data region (4096 words).
const GLOBAL_MASK: i64 = 4095;
/// Base word address of the indirect-call table.
const TABLE_BASE: i64 = 8192;

/// Errors from workload generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The assembled program failed to build (generator bug).
    Build(BuildError),
    /// The spec is internally inconsistent.
    BadSpec(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Build(e) => write!(f, "program assembly failed: {e}"),
            GenError::BadSpec(msg) => write!(f, "invalid workload spec: {msg}"),
        }
    }
}

impl Error for GenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GenError::Build(e) => Some(e),
            GenError::BadSpec(_) => None,
        }
    }
}

impl From<BuildError> for GenError {
    fn from(e: BuildError) -> Self {
        GenError::Build(e)
    }
}

/// A generated benchmark: the spec it came from, the seed, and the
/// executable program.
///
/// # Examples
///
/// ```
/// use hydra_workloads::{Workload, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Workload::generate(&WorkloadSpec::test_small(), 7)?;
/// assert_eq!(w.name(), "test-small");
/// assert!(w.program().len() > 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    spec: WorkloadSpec,
    seed: u64,
    program: Program,
}

impl Workload {
    /// Generates the program for `spec` deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::BadSpec`] for inconsistent specs (no functions,
    /// zero call-table slots); [`GenError::Build`] indicates a generator
    /// bug and should not occur.
    pub fn generate(spec: &WorkloadSpec, seed: u64) -> Result<Workload, GenError> {
        if spec.functions == 0 {
            return Err(GenError::BadSpec("spec needs at least one function".into()));
        }
        if spec.call_depth == 0 {
            return Err(GenError::BadSpec("call depth must be at least 1".into()));
        }
        if !spec.call_table_slots.is_power_of_two() {
            return Err(GenError::BadSpec(
                "call table slots must be a power of two".into(),
            ));
        }
        // The generator's memory map: software stack [0, GLOBAL_BASE),
        // globals [GLOBAL_BASE, GLOBAL_BASE + GLOBAL_MASK], call table at
        // TABLE_BASE. Loads and stores wrap modulo the data segment, so a
        // segment smaller than the map folds the regions onto each other
        // (return addresses spilled by prologues would overwrite the call
        // table).
        let needed = TABLE_BASE as u64 + spec.call_table_slots as u64;
        if spec.data_words < needed {
            return Err(GenError::BadSpec(format!(
                "data segment of {} words is smaller than the generator's                  memory map ({needed} words)",
                spec.data_words
            )));
        }
        let program = Generator::new(spec.clone(), seed).emit()?;
        Ok(Workload {
            spec: spec.clone(),
            seed,
            program,
        })
    }

    /// Generates the full eight-benchmark SPECint95 stand-in suite.
    ///
    /// # Errors
    ///
    /// Propagates any [`GenError`]; the built-in suite always succeeds.
    pub fn spec95_suite(seed: u64) -> Result<Vec<Workload>, GenError> {
        WorkloadSpec::spec95_suite()
            .iter()
            .enumerate()
            .map(|(i, s)| Workload::generate(s, seed.wrapping_add(i as u64 * 0x9e37_79b9)))
            .collect()
    }

    /// The benchmark's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The generation profile.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The executable program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// A call embedded in a branch's then-block (a *conditional* call site;
/// these give callees bursty, multi-caller return patterns like real
/// code's, which is what defeats BTB-based return prediction).
#[derive(Debug, Clone, Copy)]
enum ThenCall {
    Direct(usize),
    Rec(RecKind),
    Indirect,
}

/// What a body segment contains besides filler.
#[derive(Debug, Clone, Copy)]
enum Feature {
    DirectCall(usize),
    RecursiveCall(RecKind),
    IndirectCall,
    HardBranch {
        threshold: u8,
        then_len: usize,
        then_call: Option<ThenCall>,
    },
    EasyBranch {
        threshold: u8,
        then_len: usize,
        then_call: Option<ThenCall>,
    },
    Loop {
        iters: u64,
        body_len: usize,
    },
    MemOp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecKind {
    Direct,
    Mutual,
}

struct Generator {
    spec: WorkloadSpec,
    rng: StdRng,
    b: ProgramBuilder,
    fn_labels: Vec<Label>,
    fn_levels: Vec<usize>,
    rec_label: Option<Label>,
    mutual_a: Option<Label>,
    rec_mask: i64,
}

impl Generator {
    fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let rec_mask = if spec.recursion_depth > 0 {
            (spec.recursion_depth.next_power_of_two() - 1) as i64
        } else {
            0
        };
        Generator {
            spec,
            rng: StdRng::seed_from_u64(seed),
            b: ProgramBuilder::new(),
            fn_labels: Vec::new(),
            fn_levels: Vec::new(),
            rec_label: None,
            mutual_a: None,
            rec_mask,
        }
    }

    fn emit(mut self) -> Result<Program, GenError> {
        let n = self.spec.functions;
        self.b.set_data_words(self.spec.data_words);
        self.fn_labels = (0..n).map(|_| self.b.fresh_label()).collect();
        self.fn_levels = (0..n)
            .map(|i| i * self.spec.call_depth / n.max(1))
            .collect();
        if self.spec.recursion_depth > 0 {
            self.rec_label = Some(self.b.fresh_label());
        }
        let mutual_b = if self.spec.mutual_recursion && self.spec.recursion_depth > 0 {
            self.mutual_a = Some(self.b.fresh_label());
            Some(self.b.fresh_label())
        } else {
            None
        };

        self.emit_main()?;
        for i in 0..n {
            self.emit_function(i)?;
        }
        if let Some(rec) = self.rec_label {
            self.emit_recursive(rec, None)?;
        }
        if let (Some(a), Some(bl)) = (self.mutual_a, mutual_b) {
            self.emit_recursive(a, Some(bl))?;
            self.emit_recursive(bl, Some(a))?;
        }
        self.b.build().map_err(GenError::from)
    }

    /// Leaf functions (deepest level) used to populate the indirect-call
    /// table.
    fn leaf_candidates(&self) -> Vec<usize> {
        let max_level = *self.fn_levels.iter().max().expect("non-empty");
        (0..self.spec.functions)
            .filter(|&i| self.fn_levels[i] == max_level)
            .collect()
    }

    fn callees_below(&self, level: usize) -> Vec<usize> {
        (0..self.spec.functions)
            .filter(|&i| self.fn_levels[i] > level)
            .collect()
    }

    fn emit_main(&mut self) -> Result<(), GenError> {
        let spec = self.spec.clone();
        self.b.load_imm(Reg::SP, 0);
        let seed_imm = self.rng.gen::<i64>() | 1;
        self.b.load_imm(Reg::gpr(9), seed_imm);
        self.b.load_imm(Reg::gpr(14), spec.outer_iterations as i64);

        // Populate the indirect-call table with leaf functions.
        let leaves = self.leaf_candidates();
        for slot in 0..spec.call_table_slots {
            let f = leaves[self.rng.gen_range(0..leaves.len())];
            let label = self.fn_labels[f];
            self.b.load_label_addr(Reg::gpr(12), label);
            self.b.load_imm(Reg::gpr(11), TABLE_BASE + slot as i64);
            self.b.store(Reg::gpr(12), Reg::gpr(11), 0);
        }

        let top = self.b.fresh_label();
        self.b.bind(top)?;

        // Driver body: a few call sites over level-0 functions, the
        // recursive helpers, and the indirect table.
        // Main's call sites: every level-0 function once (so the whole
        // DAG is reachable), plus the spec's extra random sites.
        let level0: Vec<usize> = (0..spec.functions)
            .filter(|&i| self.fn_levels[i] == 0)
            .collect();
        let mut main_targets: Vec<Option<usize>> = level0.iter().copied().map(Some).collect();
        for _ in 0..spec.calls_in_main {
            main_targets.push(None); // a random site
        }
        for preset in main_targets {
            let filler = self.rng.gen_range(1..=3);
            self.emit_filler(filler);
            // Some sites repeat their call in a short burst loop (counter
            // in r15, which nothing else touches): real programs call the
            // same site repeatedly from loops, which is what gives a BTB
            // partial credit on return targets.
            let burst = if self.rng.gen_bool(0.4) {
                let iters = self
                    .rng
                    .gen_range(spec.loop_iters.0..=spec.loop_iters.1.max(spec.loop_iters.0));
                let top = self.b.fresh_label();
                self.b.load_imm(Reg::gpr(15), iters as i64);
                self.b.bind(top)?;
                Some(top)
            } else {
                None
            };
            let roll: f64 = self.rng.gen();
            if let Some(f) = preset {
                let label = self.fn_labels[f];
                self.b.call(label);
            } else if roll < spec.indirect_frac {
                self.emit_indirect_call();
            } else if roll < spec.indirect_frac + 0.15 && self.rec_label.is_some() {
                let kind = if self.mutual_a.is_some() && self.rng.gen_bool(0.4) {
                    RecKind::Mutual
                } else {
                    RecKind::Direct
                };
                self.emit_recursive_call(kind);
            } else {
                let f = level0[self.rng.gen_range(0..level0.len())];
                let label = self.fn_labels[f];
                self.b.call(label);
            }
            if let Some(top) = burst {
                self.b.alu_imm(AluOp::Sub, Reg::gpr(15), Reg::gpr(15), 1);
                self.b.branch(Cond::Gt, Reg::gpr(15), Reg::ZERO, top);
            }
        }
        self.emit_lcg_advance();

        self.b.alu_imm(AluOp::Sub, Reg::gpr(14), Reg::gpr(14), 1);
        self.b.branch(Cond::Gt, Reg::gpr(14), Reg::ZERO, top);
        self.b.halt();
        Ok(())
    }

    fn emit_function(&mut self, index: usize) -> Result<(), GenError> {
        let spec = self.spec.clone();
        let level = self.fn_levels[index];
        let label = self.fn_labels[index];
        self.b.bind(label)?;

        // Plan the body first so we know whether this function calls.
        let n_segments = self
            .rng
            .gen_range(spec.segments.0..=spec.segments.1.max(spec.segments.0));
        let callees = self.callees_below(level);
        let mut plan: Vec<(usize, Option<Feature>)> = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            let filler = self
                .rng
                .gen_range(spec.filler.0..=spec.filler.1.max(spec.filler.0));
            let feature = self.plan_feature(&callees);
            plan.push((filler, feature));
        }
        let has_call = |plan: &[(usize, Option<Feature>)]| {
            plan.iter().any(|(_, f)| {
                matches!(
                    f,
                    Some(
                        Feature::DirectCall(_)
                            | Feature::RecursiveCall(_)
                            | Feature::IndirectCall
                            | Feature::HardBranch {
                                then_call: Some(_),
                                ..
                            }
                            | Feature::EasyBranch {
                                then_call: Some(_),
                                ..
                            }
                    )
                )
            })
        };
        // Connectivity guarantee: a function above the deepest level
        // always calls at least one deeper function, so the whole call
        // graph is live regardless of which segments the dice produced.
        // (Without this, the dynamically hot set collapses to a few
        // shallow functions on unlucky seeds.)
        if !callees.is_empty() && !has_call(&plan) {
            let callee = callees[self.rng.gen_range(0..callees.len())];
            plan.push((1, Some(Feature::DirectCall(callee))));
        }
        let is_leaf = !has_call(&plan);

        if !is_leaf {
            self.emit_prologue();
        }
        for (filler, feature) in plan {
            self.emit_filler(filler);
            if let Some(f) = feature {
                self.emit_feature(f)?;
            }
        }
        if !is_leaf {
            self.emit_epilogue();
        }
        self.b.ret();
        Ok(())
    }

    /// Picks a segment feature from the spec's weights. The weights are
    /// treated as a categorical distribution; any remaining mass is a
    /// plain (filler-only) segment.
    fn plan_feature(&mut self, callees: &[usize]) -> Option<Feature> {
        let spec = &self.spec;
        let weights = [
            spec.call_prob,
            spec.hard_branch_prob,
            spec.easy_branch_prob,
            spec.loop_prob,
            spec.mem_prob,
        ];
        let total: f64 = weights.iter().sum::<f64>().max(1.0);
        let mut roll: f64 = self.rng.gen::<f64>() * total;
        let mut pick = weights.len(); // default: plain segment
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                pick = i;
                break;
            }
            roll -= w;
        }
        match pick {
            0 => {
                // A call site: recursive, indirect, or direct.
                if self.rec_label.is_some() && self.rng.gen_bool(self.rec_site_prob()) {
                    let kind = if self.mutual_a.is_some() && self.rng.gen_bool(0.4) {
                        RecKind::Mutual
                    } else {
                        RecKind::Direct
                    };
                    return Some(Feature::RecursiveCall(kind));
                }
                if callees.is_empty() {
                    // Deepest level: no direct or indirect call sites.
                    // (The indirect table holds deepest-level functions;
                    // letting them indirect-call each other would create
                    // unbounded recursive cycles.)
                    return None;
                }
                if self.rng.gen_bool(spec.indirect_frac) {
                    return Some(Feature::IndirectCall);
                }
                let callee = callees[self.rng.gen_range(0..callees.len())];
                Some(Feature::DirectCall(callee))
            }
            1 => {
                let threshold = (spec.hard_branch_takenness * 256.0)
                    .round()
                    .clamp(1.0, 255.0) as u8;
                Some(Feature::HardBranch {
                    threshold,
                    then_len: self.rng.gen_range(1..=3),
                    then_call: self.plan_then_call(callees),
                })
            }
            2 => {
                // Heavily biased: ~2% or ~98% taken.
                let threshold = if self.rng.gen_bool(0.5) { 6 } else { 250 };
                Some(Feature::EasyBranch {
                    threshold,
                    then_len: self.rng.gen_range(1..=3),
                    then_call: self.plan_then_call(callees),
                })
            }
            3 => {
                let iters = self
                    .rng
                    .gen_range(spec.loop_iters.0..=spec.loop_iters.1.max(spec.loop_iters.0));
                Some(Feature::Loop {
                    iters,
                    body_len: self.rng.gen_range(1..=3),
                })
            }
            4 => Some(Feature::MemOp),
            _ => None,
        }
    }

    /// Fraction of call sites that target the recursive helpers, scaled
    /// with the benchmark's recursion depth so shallow-recursion profiles
    /// are not dominated by the helpers' data-dependent base-case branch.
    fn rec_site_prob(&self) -> f64 {
        if self.spec.recursion_depth == 0 {
            0.0
        } else {
            (0.02 + 0.003 * self.spec.recursion_depth as f64).min(0.15)
        }
    }

    /// Decides whether a branch's then-block embeds a call site and of
    /// what kind. Conditional call sites are what give a callee several
    /// dynamically-interleaved callers.
    fn plan_then_call(&mut self, callees: &[usize]) -> Option<ThenCall> {
        if !self.rng.gen_bool(0.20) {
            return None;
        }
        if self.rec_label.is_some() && self.rng.gen_bool(self.rec_site_prob()) {
            let kind = if self.mutual_a.is_some() && self.rng.gen_bool(0.4) {
                RecKind::Mutual
            } else {
                RecKind::Direct
            };
            return Some(ThenCall::Rec(kind));
        }
        if callees.is_empty() {
            return None; // deepest level: see plan_feature
        }
        if self.rng.gen_bool(self.spec.indirect_frac) {
            return Some(ThenCall::Indirect);
        }
        Some(ThenCall::Direct(
            callees[self.rng.gen_range(0..callees.len())],
        ))
    }

    fn emit_feature(&mut self, feature: Feature) -> Result<(), GenError> {
        match feature {
            Feature::DirectCall(callee) => {
                let label = self.fn_labels[callee];
                self.b.call(label);
            }
            Feature::RecursiveCall(kind) => self.emit_recursive_call(kind),
            Feature::IndirectCall => self.emit_indirect_call(),
            Feature::HardBranch {
                threshold,
                then_len,
                then_call,
            }
            | Feature::EasyBranch {
                threshold,
                then_len,
                then_call,
            } => {
                self.emit_lcg_advance();
                self.b.alu_imm(AluOp::Srl, Reg::gpr(11), Reg::gpr(9), 33);
                self.b.alu_imm(AluOp::And, Reg::gpr(11), Reg::gpr(11), 255);
                self.b
                    .alu_imm(AluOp::Slt, Reg::gpr(11), Reg::gpr(11), i64::from(threshold));
                let skip = self.b.fresh_label();
                self.b.branch(Cond::Ne, Reg::gpr(11), Reg::ZERO, skip);
                self.emit_filler(then_len);
                match then_call {
                    Some(ThenCall::Direct(callee)) => {
                        let label = self.fn_labels[callee];
                        self.b.call(label);
                    }
                    Some(ThenCall::Rec(kind)) => self.emit_recursive_call(kind),
                    Some(ThenCall::Indirect) => self.emit_indirect_call(),
                    None => {}
                }
                self.b.bind(skip)?;
            }
            Feature::Loop { iters, body_len } => {
                self.b.load_imm(Reg::gpr(8), iters as i64);
                let top = self.b.fresh_label();
                self.b.bind(top)?;
                self.emit_filler(body_len);
                self.b.alu_imm(AluOp::Sub, Reg::gpr(8), Reg::gpr(8), 1);
                self.b.branch(Cond::Gt, Reg::gpr(8), Reg::ZERO, top);
            }
            Feature::MemOp => {
                self.emit_lcg_advance();
                self.b.alu_imm(AluOp::Srl, Reg::gpr(12), Reg::gpr(9), 17);
                self.b
                    .alu_imm(AluOp::And, Reg::gpr(12), Reg::gpr(12), GLOBAL_MASK);
                self.b
                    .alu_imm(AluOp::Add, Reg::gpr(12), Reg::gpr(12), GLOBAL_BASE);
                self.b.store(Reg::gpr(1), Reg::gpr(12), 0);
                self.b.load(Reg::gpr(2), Reg::gpr(12), 0);
            }
        }
        Ok(())
    }

    fn emit_recursive_call(&mut self, kind: RecKind) {
        // r10 = recursion depth, fixed per call site (drawn at generation
        // time). Depths vary across sites — which is what exercises the
        // return-address stack at different nesting levels — while the
        // helper's base-case branch stays history-predictable, as it is
        // in real recursive code walking similarly-shaped structures.
        let depth = self.rng.gen_range(1..=self.spec.recursion_depth.max(1)) as i64;
        self.b.load_imm(Reg::gpr(10), depth);
        let target = match kind {
            RecKind::Direct => self.rec_label.expect("recursion enabled"),
            RecKind::Mutual => self.mutual_a.expect("mutual recursion enabled"),
        };
        self.b.call(target);
    }

    fn emit_indirect_call(&mut self) {
        self.emit_lcg_advance();
        // Skewed slot selection (AND of two independent bit windows):
        // like real interpreter dispatch, a few hot targets dominate
        // instead of a uniform scramble.
        self.b.alu_imm(AluOp::Srl, Reg::gpr(11), Reg::gpr(9), 21);
        self.b.alu_imm(AluOp::Srl, Reg::gpr(12), Reg::gpr(9), 43);
        self.b
            .alu(AluOp::And, Reg::gpr(11), Reg::gpr(11), Reg::gpr(12));
        self.b.alu_imm(
            AluOp::And,
            Reg::gpr(11),
            Reg::gpr(11),
            self.spec.call_table_slots as i64 - 1,
        );
        self.b
            .alu_imm(AluOp::Add, Reg::gpr(11), Reg::gpr(11), TABLE_BASE);
        self.b.load(Reg::gpr(13), Reg::gpr(11), 0);
        self.b.call_indirect(Reg::gpr(13));
    }

    /// A self- or mutually-recursive helper:
    /// clamp r10; if r10 <= 0 return; save ra; --r10; call peer; restore.
    fn emit_recursive(&mut self, label: Label, peer: Option<Label>) -> Result<(), GenError> {
        self.b.bind(label)?;
        let base = self.b.fresh_label();
        self.b
            .alu_imm(AluOp::And, Reg::gpr(10), Reg::gpr(10), self.rec_mask);
        self.b.branch(Cond::Le, Reg::gpr(10), Reg::ZERO, base);
        self.emit_prologue();
        self.emit_filler(2);
        self.b.alu_imm(AluOp::Sub, Reg::gpr(10), Reg::gpr(10), 1);
        self.b.call(peer.unwrap_or(label));
        self.emit_epilogue();
        self.b.bind(base)?;
        self.b.ret();
        Ok(())
    }

    fn emit_prologue(&mut self) {
        self.b.alu_imm(AluOp::Add, Reg::SP, Reg::SP, 1);
        self.b.store(Reg::RA, Reg::SP, 0);
    }

    fn emit_epilogue(&mut self) {
        self.b.load(Reg::RA, Reg::SP, 0);
        self.b.alu_imm(AluOp::Sub, Reg::SP, Reg::SP, 1);
    }

    /// Advances the in-program pseudo-random state in `r9` with an
    /// xorshift step (all single-cycle operations, so data-dependent
    /// branches resolve at realistic latencies).
    fn emit_lcg_advance(&mut self) {
        let r9 = Reg::gpr(9);
        let r11 = Reg::gpr(11);
        self.b.alu_imm(AluOp::Sll, r11, r9, 13);
        self.b.alu(AluOp::Xor, r9, r9, r11);
        self.b.alu_imm(AluOp::Srl, r11, r9, 7);
        self.b.alu(AluOp::Xor, r9, r9, r11);
        self.b.alu_imm(AluOp::Sll, r11, r9, 17);
        self.b.alu(AluOp::Xor, r9, r9, r11);
    }

    fn emit_filler(&mut self, count: usize) {
        const OPS: [AluOp; 6] = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Xor,
            AluOp::Or,
            AluOp::And,
            AluOp::Sll,
        ];
        for _ in 0..count {
            let rd = Reg::gpr(self.rng.gen_range(1..=7));
            let rs = Reg::gpr(self.rng.gen_range(1..=7));
            if self.rng.gen_bool(0.12) {
                // Occasional long-latency op to exercise the OoO window.
                self.b
                    .alu_imm(AluOp::Mul, rd, rs, self.rng.gen_range(3..=9));
            } else if self.rng.gen_bool(0.5) {
                let rt = Reg::gpr(self.rng.gen_range(1..=7));
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                if op == AluOp::Sll {
                    self.b.alu_imm(AluOp::Sll, rd, rs, self.rng.gen_range(0..8));
                } else {
                    self.b.alu(op, rd, rs, rt);
                }
            } else {
                let op = OPS[self.rng.gen_range(0..5usize)];
                self.b.alu_imm(op, rd, rs, self.rng.gen_range(-64..=64));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_isa::{ControlKind, Machine};

    fn small() -> Workload {
        Workload::generate(&WorkloadSpec::test_small(), 42).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&WorkloadSpec::test_small(), 42).unwrap();
        let b = Workload::generate(&WorkloadSpec::test_small(), 42).unwrap();
        assert_eq!(a.program(), b.program());
        let c = Workload::generate(&WorkloadSpec::test_small(), 43).unwrap();
        assert_ne!(a.program(), c.program());
    }

    #[test]
    fn small_workload_runs_to_halt() {
        let w = small();
        let mut m = Machine::new(w.program());
        let n = m.run(5_000_000).expect("terminates");
        assert!(m.is_halted());
        assert!(n > 5_000, "retired {n}");
    }

    #[test]
    fn program_contains_calls_returns_and_branches() {
        let w = small();
        let p = w.program();
        assert!(p.count_matching(|i| i.control_kind().is_call()) >= 3);
        assert!(p.count_matching(|i| i.control_kind().is_return()) >= 3);
        assert!(
            p.count_matching(|i| matches!(i.control_kind(), ControlKind::CondBranch { .. })) >= 3
        );
    }

    #[test]
    fn dynamic_stream_balances_calls_and_returns() {
        let w = small();
        let mut m = Machine::new(w.program());
        let mut calls = 0u64;
        let mut returns = 0u64;
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        while !m.is_halted() {
            let r = m.step().expect("no faults");
            let ck = r.inst.control_kind();
            if ck.is_call() {
                calls += 1;
                depth += 1;
                max_depth = max_depth.max(depth);
            } else if ck.is_return() {
                returns += 1;
                depth -= 1;
            }
            assert!(depth >= 0, "return without matching call");
            if m.retired_count() > 5_000_000 {
                panic!("runaway");
            }
        }
        assert_eq!(calls, returns, "every call returns");
        assert!(max_depth >= 3, "some nesting: {max_depth}");
        assert!(calls > 100, "plenty of calls: {calls}");
    }

    #[test]
    fn returns_always_match_call_sites() {
        // The golden property the RAS relies on: a return's actual target
        // is the instruction after the matching call.
        let w = small();
        let mut m = Machine::new(w.program());
        let mut shadow = Vec::new();
        while !m.is_halted() {
            let r = m.step().expect("no faults");
            let ck = r.inst.control_kind();
            if ck.is_call() {
                shadow.push(r.pc.next());
            } else if ck.is_return() {
                let expect = shadow.pop().expect("matched");
                assert_eq!(r.next_pc, expect, "return target mismatch at {}", r.pc);
            }
            if m.retired_count() > 5_000_000 {
                panic!("runaway");
            }
        }
    }

    #[test]
    fn suite_generates_and_smoke_runs() {
        let suite = Workload::spec95_suite(1).unwrap();
        assert_eq!(suite.len(), 8);
        for w in &suite {
            let mut m = Machine::new(w.program());
            // Don't run to completion (hundreds of millions of
            // instructions); just smoke-test a slice.
            match m.run(200_000) {
                Ok(_) => {}                                              // tiny benchmark finished
                Err(hydra_isa::ExecError::InstructionLimit { .. }) => {} // expected
                Err(e) => panic!("{}: {e}", w.name()),
            }
            assert!(m.retired_count() > 50_000, "{} too short", w.name());
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut s = WorkloadSpec::test_small();
        s.functions = 0;
        assert!(matches!(
            Workload::generate(&s, 1),
            Err(GenError::BadSpec(_))
        ));
        let mut s = WorkloadSpec::test_small();
        s.call_depth = 0;
        assert!(matches!(
            Workload::generate(&s, 1),
            Err(GenError::BadSpec(_))
        ));
        let mut s = WorkloadSpec::test_small();
        s.call_table_slots = 3;
        assert!(matches!(
            Workload::generate(&s, 1),
            Err(GenError::BadSpec(_))
        ));
    }

    #[test]
    fn accessors() {
        let w = small();
        assert_eq!(w.seed(), 42);
        assert_eq!(w.spec().name, "test-small");
        assert!(!GenError::BadSpec("x".into()).to_string().is_empty());
    }

    #[test]
    fn hard_branches_are_actually_unpredictable() {
        // Measure takenness of dynamic conditional branches; with hard
        // branches present the aggregate should be strictly between the
        // biases.
        let w = small();
        let mut m = Machine::new(w.program());
        let mut taken = 0u64;
        let mut total = 0u64;
        while !m.is_halted() && m.retired_count() < 300_000 {
            let r = m.step().unwrap();
            if let Some(t) = r.taken {
                total += 1;
                taken += u64::from(t);
            }
        }
        assert!(total > 500);
        let rate = taken as f64 / total as f64;
        assert!((0.05..=0.95).contains(&rate), "takenness {rate}");
    }
}

#[cfg(test)]
mod connectivity_tests {
    use super::*;
    use hydra_isa::{ControlKind, Inst};
    use std::collections::HashSet;

    /// Static reachability: every generated function is reachable from
    /// main through direct calls and the indirect-call table.
    #[test]
    fn every_function_is_statically_reachable() {
        for seed in [1u64, 2, 3] {
            for spec in WorkloadSpec::spec95_suite() {
                let w = Workload::generate(&spec, seed).unwrap();
                let p = w.program();
                // Call targets: direct calls + every address materialized
                // by load_label_addr into the table (LoadImm of a code
                // address is only emitted for table setup).
                let mut targets: HashSet<u64> = HashSet::new();
                for (_, inst) in p.iter() {
                    match inst {
                        Inst::Call { target } => {
                            targets.insert(target.word());
                        }
                        Inst::LoadImm { imm, .. } if imm >= 0 && (imm as u64) < p.len() as u64 => {
                            targets.insert(imm as u64);
                        }
                        _ => {}
                    }
                }
                // Function entries: each `ret` ends a function; entries
                // are found by scanning for call targets. Every function
                // entry the generator laid down must be called somewhere:
                // count distinct call targets and compare against the
                // spec's function count (helpers add a few more).
                assert!(
                    targets.len() >= spec.functions.min(8),
                    "{} seed {seed}: only {} distinct call targets",
                    spec.name,
                    targets.len()
                );
            }
        }
    }

    /// Dynamic depth: with connectivity guaranteed, the call tree goes at
    /// least a couple of levels deep on every suite benchmark.
    #[test]
    fn suite_call_trees_are_deep() {
        for spec in WorkloadSpec::spec95_suite() {
            let w = Workload::generate(&spec, 12345).unwrap();
            let mut m = hydra_isa::Machine::new(w.program());
            let mut depth = 0u64;
            let mut max_depth = 0u64;
            while !m.is_halted() && m.retired_count() < 150_000 {
                let r = m.step().unwrap();
                let ck = r.inst.control_kind();
                if ck.is_call() {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                } else if matches!(ck, ControlKind::Return) {
                    depth = depth.saturating_sub(1);
                }
            }
            let floor = if spec.call_depth >= 3 { 3 } else { 2 };
            assert!(
                max_depth >= floor,
                "{}: max call depth {max_depth} < {floor}",
                spec.name
            );
        }
    }
}
