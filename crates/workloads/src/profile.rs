//! Architectural (functional) workload profiling.
//!
//! The paper's Table 2 characterizes its benchmarks: dynamic instruction
//! mix, branch behaviour, and call-nesting profile. [`DynamicProfile`]
//! computes the same characterization for a generated workload by running
//! the functional emulator — no pipeline involved, so it measures the
//! *program*, not the machine.

use crate::Workload;
use hydra_isa::{ControlKind, ExecError, FastCore, FunctionalCore};
use hydra_stats::{Histogram, Ratio};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dynamic characteristics of a workload over an execution window.
///
/// # Examples
///
/// ```
/// use hydra_workloads::{DynamicProfile, Workload, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Workload::generate(&WorkloadSpec::test_small(), 42)?;
/// let p = DynamicProfile::measure(&w, 2_000_000);
/// assert!(p.halted);
/// assert_eq!(p.calls, p.returns); // the generator's invariant
/// assert!(p.cond_branch_fraction().value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicProfile {
    /// Instructions retired in the window.
    pub instructions: u64,
    /// Whether the program halted within the window.
    pub halted: bool,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Dynamic calls (direct + indirect).
    pub calls: u64,
    /// Dynamic indirect calls.
    pub indirect_calls: u64,
    /// Dynamic returns.
    pub returns: u64,
    /// Dynamic unconditional direct jumps.
    pub jumps: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Call-nesting depth at each return (histogram).
    pub depth_histogram: Histogram,
    /// Deepest call nesting observed.
    pub max_call_depth: u64,
}

impl DynamicProfile {
    /// Profiles `workload` for at most `limit` instructions on the
    /// functional core (the pre-decoded [`FastCore`], observably
    /// identical to `Machine` but an order of magnitude faster — this
    /// loop still steps one instruction at a time because it inspects
    /// every retired record).
    pub fn measure(workload: &Workload, limit: u64) -> DynamicProfile {
        let mut m = FastCore::new(workload.program());
        let mut p = DynamicProfile {
            instructions: 0,
            halted: false,
            cond_branches: 0,
            taken_branches: 0,
            calls: 0,
            indirect_calls: 0,
            returns: 0,
            jumps: 0,
            loads: 0,
            stores: 0,
            depth_histogram: Histogram::with_cap(128),
            max_call_depth: 0,
        };
        let mut depth: u64 = 0;
        while !m.is_halted() && m.retired_count() < limit {
            let r = match m.step() {
                Ok(r) => r,
                Err(ExecError::Halted) => break,
                Err(e) => unreachable!("generated programs do not fault: {e}"),
            };
            p.instructions += 1;
            if r.inst.is_load() {
                p.loads += 1;
            } else if r.inst.is_store() {
                p.stores += 1;
            }
            match r.inst.control_kind() {
                ControlKind::CondBranch { .. } => {
                    p.cond_branches += 1;
                    if r.taken == Some(true) {
                        p.taken_branches += 1;
                    }
                }
                ControlKind::Call { .. } => {
                    p.calls += 1;
                    depth += 1;
                }
                ControlKind::IndirectCall => {
                    p.calls += 1;
                    p.indirect_calls += 1;
                    depth += 1;
                }
                ControlKind::Return => {
                    p.returns += 1;
                    p.depth_histogram.record(depth);
                    depth = depth.saturating_sub(1);
                }
                ControlKind::Jump { .. } => p.jumps += 1,
                _ => {}
            }
            p.max_call_depth = p.max_call_depth.max(depth);
        }
        p.halted = m.is_halted();
        p
    }

    /// Fraction of instructions that are conditional branches.
    pub fn cond_branch_fraction(&self) -> Ratio {
        Ratio::of(self.cond_branches, self.instructions)
    }

    /// Fraction of instructions that are calls.
    pub fn call_fraction(&self) -> Ratio {
        Ratio::of(self.calls, self.instructions)
    }

    /// Fraction of instructions that are returns.
    pub fn return_fraction(&self) -> Ratio {
        Ratio::of(self.returns, self.instructions)
    }

    /// Fraction of instructions that touch data memory.
    pub fn memory_fraction(&self) -> Ratio {
        Ratio::of(self.loads + self.stores, self.instructions)
    }

    /// Taken rate of conditional branches.
    pub fn taken_rate(&self) -> Ratio {
        Ratio::of(self.taken_branches, self.cond_branches)
    }

    /// Fraction of calls that are indirect.
    pub fn indirect_call_fraction(&self) -> Ratio {
        Ratio::of(self.indirect_calls, self.calls)
    }

    /// Mean call-nesting depth at returns.
    pub fn mean_call_depth(&self) -> f64 {
        self.depth_histogram.mean()
    }
}

impl fmt::Display for DynamicProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs: {} cond-br ({} taken), {} calls ({} indirect), \
             {} returns, depth mean {:.1} max {}",
            self.instructions,
            self.cond_branch_fraction(),
            self.taken_rate(),
            self.call_fraction(),
            self.indirect_call_fraction(),
            self.return_fraction(),
            self.mean_call_depth(),
            self.max_call_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;

    fn profile() -> DynamicProfile {
        let w = Workload::generate(&WorkloadSpec::test_small(), 42).unwrap();
        DynamicProfile::measure(&w, 2_000_000)
    }

    #[test]
    fn small_workload_halts_and_balances() {
        let p = profile();
        assert!(p.halted);
        assert_eq!(p.calls, p.returns);
        assert!(p.instructions > 10_000);
    }

    #[test]
    fn fractions_are_consistent() {
        let p = profile();
        assert_eq!(
            p.call_fraction().numerator(),
            p.calls,
            "ratio carries the raw count"
        );
        assert!(p.cond_branch_fraction().value() > 0.01);
        assert!(p.memory_fraction().value() > 0.0);
        assert!(p.taken_rate().value() > 0.0 && p.taken_rate().value() < 1.0);
    }

    #[test]
    fn depth_histogram_matches_counts() {
        let p = profile();
        assert_eq!(p.depth_histogram.total(), p.returns);
        assert!(p.max_call_depth >= 3, "test workload nests calls");
        assert!(p.mean_call_depth() >= 1.0);
    }

    #[test]
    fn limit_truncates_window() {
        let w = Workload::generate(&WorkloadSpec::test_small(), 42).unwrap();
        let p = DynamicProfile::measure(&w, 1_000);
        assert!(!p.halted);
        assert_eq!(p.instructions, 1_000);
    }

    #[test]
    fn indirect_calls_counted_when_present() {
        // perl models interpreter dispatch: 30% of call sites are
        // indirect, so dynamic indirect calls must appear.
        let spec = WorkloadSpec::by_name("perl").unwrap();
        let w = Workload::generate(&spec, 12345).unwrap();
        let p = DynamicProfile::measure(&w, 200_000);
        assert!(p.indirect_calls > 0);
        assert!(p.indirect_call_fraction().value() < 1.0);
    }

    #[test]
    fn display_is_informative() {
        let p = profile();
        let s = p.to_string();
        assert!(s.contains("instrs"));
        assert!(s.contains("returns"));
    }

    #[test]
    fn suite_profiles_have_spec_like_character() {
        // The calibrated suite: call fractions in a plausible SPEC-like
        // band and li clearly the most call-intensive.
        let mut li_calls = 0.0;
        let mut go_calls = 0.0;
        for spec in WorkloadSpec::spec95_suite() {
            let w = Workload::generate(&spec, 12345).unwrap();
            let p = DynamicProfile::measure(&w, 300_000);
            let f = p.call_fraction().value();
            assert!(
                (0.001..0.12).contains(&f),
                "{}: call fraction {f}",
                spec.name
            );
            match spec.name.as_str() {
                "li" => li_calls = f,
                "go" => go_calls = f,
                _ => {}
            }
        }
        assert!(li_calls > go_calls, "li is more call-intensive than go");
    }
}
