//! Synthetic SPECint95-like workloads for the HydraScalar reproduction.
//!
//! The paper evaluates on the SPECint95 reference binaries, which this
//! reproduction cannot ship. Instead, this crate *generates* real
//! [`hydra_isa`] programs whose control-flow character is tuned per
//! benchmark to the properties that drive return-address-stack behaviour:
//!
//! * **call/return density** — how many instructions separate call sites;
//! * **call-graph shape** — fan-out, fan-in (multiple callers per callee,
//!   which is what defeats BTB-based return prediction), depth, direct
//!   and mutual recursion, and indirect calls through function-pointer
//!   tables;
//! * **conditional-branch predictability** — a mix of loop back-edges and
//!   biased branches (predictable) with branches on in-program
//!   pseudo-random data (hard), mixed per benchmark to land near the
//!   SPECint95 prediction accuracies the paper reports (go worst at
//!   ~75%, vortex best at ~98%);
//! * **memory traffic** — loads and stores over a global region plus the
//!   software stack that spills return addresses, exactly like compiled
//!   code.
//!
//! Branch outcomes are *computed by the program itself* (a linear
//! congruential generator advanced in registers), so the workloads are
//! ordinary deterministic programs: the cycle-level simulator speculates
//! down their wrong paths and corrupts its return-address stack the same
//! way it would running compiled C.
//!
//! The eight profiles ([`WorkloadSpec::spec95_suite`]) are named after the
//! SPECint95 members they stand in for. The mapping is a modeling choice,
//! not a claim of binary equivalence; DESIGN.md discusses the
//! substitution.
//!
//! # Examples
//!
//! ```
//! use hydra_workloads::{Workload, WorkloadSpec};
//! use hydra_isa::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = WorkloadSpec::test_small();
//! let w = Workload::generate(&spec, 42)?;
//! let mut m = Machine::new(w.program());
//! let retired = m.run(2_000_000)?;
//! assert!(retired > 1_000, "the program does real work");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod profile;
mod spec;

pub use gen::{GenError, Workload};
pub use profile::DynamicProfile;
pub use spec::WorkloadSpec;
