//! The decoupled branch target buffer.

use hydra_isa::Addr;
use serde::{Deserialize, Serialize};

/// BTB geometry. The default (128 sets × 4 ways = 512 entries) follows
/// the paper's baseline, which decouples the BTB from the direction
/// predictor and allocates entries only for taken branches so a smaller
/// BTB suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for BtbConfig {
    fn default() -> Self {
        BtbConfig { sets: 128, ways: 4 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct BtbEntry {
    tag: u64,
    target: Addr,
    /// Smaller is older; replacement evicts the minimum.
    lru: u64,
}

/// A set-associative branch target buffer.
///
/// Maps branch PCs to their most recent taken target. Updated at commit
/// for taken control transfers (and, in the paper's *BTB-only* return
/// configuration, for returns — which is exactly why returns predict
/// poorly from a BTB: the target changes with the caller).
///
/// # Examples
///
/// ```
/// use hydra_bpred::{Btb, BtbConfig};
/// use hydra_isa::Addr;
///
/// let mut btb = Btb::new(BtbConfig::default());
/// btb.update(Addr::new(10), Addr::new(200));
/// assert_eq!(btb.lookup(Addr::new(10)), Some(Addr::new(200)));
/// assert_eq!(btb.lookup(Addr::new(11)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    config: BtbConfig,
    sets: Vec<Vec<BtbEntry>>,
    clock: u64,
    hits: u64,
    lookups: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: BtbConfig) -> Self {
        assert!(
            config.sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        assert!(config.ways > 0, "BTB associativity must be > 0");
        Btb {
            config,
            // Not `vec![Vec::with_capacity(ways); sets]`: `Vec::clone`
            // does not preserve capacity, so every clone would start at
            // zero and allocate lazily on first touch — leaking
            // allocations into the steady-state hot path long after
            // warm-up.
            sets: (0..config.sets)
                .map(|_| Vec::with_capacity(config.ways))
                .collect(),
            clock: 0,
            hits: 0,
            lookups: 0,
        }
    }

    /// The geometry in force.
    pub fn config(&self) -> &BtbConfig {
        &self.config
    }

    fn set_index(&self, pc: Addr) -> usize {
        (pc.word() as usize) & (self.config.sets - 1)
    }

    fn tag(pc: Addr) -> u64 {
        pc.word()
    }

    /// Looks up the predicted target for the branch at `pc`.
    ///
    /// A hit refreshes the entry's recency. Lookups and hits are counted
    /// for the front-end statistics.
    pub fn lookup(&mut self, pc: Addr) -> Option<Addr> {
        self.lookups += 1;
        self.clock += 1;
        let set = self.set_index(pc);
        let tag = Btb::tag(pc);
        let clock = self.clock;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.tag == tag) {
            e.lru = clock;
            self.hits += 1;
            Some(e.target)
        } else {
            None
        }
    }

    /// Peeks at the target without touching recency or statistics.
    pub fn peek(&self, pc: Addr) -> Option<Addr> {
        let set = self.set_index(pc);
        let tag = Btb::tag(pc);
        self.sets[set]
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| e.target)
    }

    /// Installs or refreshes the mapping `pc -> target` (commit-time, for
    /// taken transfers). Evicts the least-recently-used way when the set
    /// is full.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        self.clock += 1;
        let set = self.set_index(pc);
        let tag = Btb::tag(pc);
        let clock = self.clock;
        let ways = self.config.ways;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.tag == tag) {
            e.target = target;
            e.lru = clock;
            return;
        }
        let new_entry = BtbEntry {
            tag,
            target,
            lru: clock,
        };
        if entries.len() < ways {
            entries.push(new_entry);
        } else {
            let victim = entries
                .iter_mut()
                .min_by_key(|e| e.lru)
                .expect("non-empty set");
            *victim = new_entry;
        }
    }

    /// `(hits, lookups)` counted so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.lookups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Btb {
        Btb::new(BtbConfig { sets: 2, ways: 2 })
    }

    #[test]
    fn miss_then_hit() {
        let mut b = tiny();
        assert_eq!(b.lookup(Addr::new(4)), None);
        b.update(Addr::new(4), Addr::new(100));
        assert_eq!(b.lookup(Addr::new(4)), Some(Addr::new(100)));
        assert_eq!(b.hit_stats(), (1, 2));
    }

    #[test]
    fn update_replaces_target() {
        let mut b = tiny();
        b.update(Addr::new(4), Addr::new(100));
        b.update(Addr::new(4), Addr::new(200));
        assert_eq!(b.peek(Addr::new(4)), Some(Addr::new(200)));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut b = tiny();
        // Addresses 0, 2, 4 all map to set 0 (even words).
        b.update(Addr::new(0), Addr::new(10));
        b.update(Addr::new(2), Addr::new(20));
        // Touch 0 so 2 becomes LRU.
        assert_eq!(b.lookup(Addr::new(0)), Some(Addr::new(10)));
        b.update(Addr::new(4), Addr::new(40)); // evicts 2
        assert_eq!(b.peek(Addr::new(2)), None);
        assert_eq!(b.peek(Addr::new(0)), Some(Addr::new(10)));
        assert_eq!(b.peek(Addr::new(4)), Some(Addr::new(40)));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut b = tiny();
        b.update(Addr::new(0), Addr::new(10)); // set 0
        b.update(Addr::new(1), Addr::new(11)); // set 1
        b.update(Addr::new(2), Addr::new(12)); // set 0
        b.update(Addr::new(3), Addr::new(13)); // set 1
        assert_eq!(b.peek(Addr::new(0)), Some(Addr::new(10)));
        assert_eq!(b.peek(Addr::new(3)), Some(Addr::new(13)));
    }

    #[test]
    fn peek_does_not_count() {
        let mut b = tiny();
        b.update(Addr::new(0), Addr::new(10));
        let _ = b.peek(Addr::new(0));
        assert_eq!(b.hit_stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sets_panics() {
        let _ = Btb::new(BtbConfig { sets: 3, ways: 1 });
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_ways_panics() {
        let _ = Btb::new(BtbConfig { sets: 2, ways: 0 });
    }

    #[test]
    fn returns_with_multiple_callers_thrash() {
        // The Table-4 phenomenon in miniature: one return, two callers.
        let mut b = tiny();
        let ret_pc = Addr::new(6);
        let mut hits = 0;
        for i in 0..100u64 {
            let actual = if i % 2 == 0 {
                Addr::new(50)
            } else {
                Addr::new(70)
            };
            if b.lookup(ret_pc) == Some(actual) {
                hits += 1;
            }
            b.update(ret_pc, actual);
        }
        // Strictly alternating callers: the BTB's last-target prediction
        // is always stale.
        assert_eq!(hits, 0);
    }

    #[test]
    fn config_accessor() {
        assert_eq!(tiny().config().ways, 2);
    }
}
