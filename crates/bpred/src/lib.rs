//! Branch-prediction substrate for the HydraScalar reproduction.
//!
//! Implements the front-end prediction structures of the paper's baseline
//! machine (Table 1, modeled loosely on the Alpha 21264):
//!
//! * [`HybridPredictor`] — a McFarling-style two-component hybrid
//!   combining a 4K-entry GAg (global-history) predictor with a
//!   1K × 10-bit PAg (local-history) predictor, arbitrated by a 4K-entry
//!   chooser indexed by global history;
//! * [`Btb`] — a decoupled branch target buffer that only allocates
//!   entries for taken branches (Calder & Grunwald);
//! * [`ConfidenceEstimator`] — a JRS-style miss-distance-counter table
//!   used by the multipath core to decide *which* branches to fork;
//! * [`SaturatingCounter`] — the n-bit counter primitive all of the above
//!   are built from.
//!
//! Direction-predictor and BTB state are updated at commit (as in
//! SimpleScalar), so wrong-path branches never pollute them; the
//! return-address stack (crate `ras-core`) is the one front-end structure
//! that *must* be updated speculatively at fetch, which is exactly why it
//! needs repair.
//!
//! # Examples
//!
//! ```
//! use hydra_bpred::{HybridConfig, HybridPredictor};
//! use hydra_isa::Addr;
//!
//! let mut p = HybridPredictor::new(HybridConfig::default());
//! let pc = Addr::new(100);
//! // Train: this branch is always taken.
//! for _ in 0..32 {
//!     let pred = p.predict(pc);
//!     p.update(pc, &pred, true);
//! }
//! assert!(p.predict(pc).taken);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod confidence;
mod counter;
mod hybrid;

pub use btb::{Btb, BtbConfig};
pub use confidence::{ConfidenceConfig, ConfidenceEstimator};
pub use counter::SaturatingCounter;
pub use hybrid::{DirectionPrediction, HybridConfig, HybridPredictor};
