//! The McFarling-style hybrid direction predictor.

use crate::SaturatingCounter;
use hydra_isa::Addr;
use serde::{Deserialize, Serialize};

/// Geometry of the hybrid predictor.
///
/// Defaults match the paper's baseline (Table 1): a 4K-entry GAg with
/// 12 bits of global history, a PAg with 1K 10-bit local histories
/// indexing a 1K-entry pattern table, and a 4K-entry chooser indexed by
/// global history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Bits of global history (GAg table has `2^global_history_bits`
    /// counters).
    pub global_history_bits: u32,
    /// Number of per-address local-history registers (power of two).
    pub local_history_entries: usize,
    /// Bits of local history (PAg pattern table has
    /// `2^local_history_bits` counters).
    pub local_history_bits: u32,
    /// Bits of global history indexing the chooser (table has
    /// `2^chooser_bits` counters).
    pub chooser_bits: u32,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            global_history_bits: 12,     // 4K GAg
            local_history_entries: 1024, // 1K histories
            local_history_bits: 10,      // 10-bit local history -> 1K PHT
            chooser_bits: 12,            // 4K chooser
        }
    }
}

impl HybridConfig {
    fn validate(&self) {
        assert!(
            (1..=20).contains(&self.global_history_bits),
            "global history bits out of range"
        );
        assert!(
            self.local_history_entries.is_power_of_two(),
            "local history entries must be a power of two"
        );
        assert!(
            (1..=20).contains(&self.local_history_bits),
            "local history bits out of range"
        );
        assert!(
            (1..=20).contains(&self.chooser_bits),
            "chooser bits out of range"
        );
    }
}

/// Everything recorded at prediction time that the commit-time update
/// needs: the component predictions and the history values used to index
/// the tables.
///
/// Passing this back to [`HybridPredictor::update`] (rather than
/// re-deriving indices at commit) makes the update hit exactly the
/// counters that produced the prediction even though the global history
/// has moved on — the same bookkeeping real pipelines carry with each
/// in-flight branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectionPrediction {
    /// The hybrid's final direction prediction.
    pub taken: bool,
    /// What the GAg component said.
    pub gag_taken: bool,
    /// What the PAg component said.
    pub pag_taken: bool,
    /// Whether the chooser selected the GAg component.
    pub chose_gag: bool,
    gag_index: usize,
    pag_index: usize,
    chooser_index: usize,
    local_slot: usize,
}

/// McFarling two-component hybrid: GAg + PAg with a global-history-indexed
/// chooser.
///
/// Prediction is pure (`&self`); all training happens in
/// [`HybridPredictor::update`], which the pipeline calls at instruction
/// commit so wrong-path branches never train the tables.
///
/// # Examples
///
/// ```
/// use hydra_bpred::{HybridConfig, HybridPredictor};
/// use hydra_isa::Addr;
///
/// let mut p = HybridPredictor::new(HybridConfig::default());
/// // An alternating branch is learned by the local (PAg) component.
/// let pc = Addr::new(7);
/// let mut correct = 0;
/// for i in 0..200u32 {
///     let outcome = i % 2 == 0;
///     let pred = p.predict(pc);
///     if pred.taken == outcome {
///         correct += 1;
///     }
///     p.update(pc, &pred, outcome);
/// }
/// assert!(correct > 150, "local history learns alternation: {correct}");
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    config: HybridConfig,
    gag: Vec<SaturatingCounter>,
    pag_histories: Vec<u32>,
    pag_pht: Vec<SaturatingCounter>,
    chooser: Vec<SaturatingCounter>,
    global_history: u64,
}

impl HybridPredictor {
    /// Creates a predictor with all counters weakly-not-taken and empty
    /// histories.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out of range (zero-width histories
    /// or a non-power-of-two local table).
    pub fn new(config: HybridConfig) -> Self {
        config.validate();
        HybridPredictor {
            config,
            gag: vec![SaturatingCounter::two_bit(); 1 << config.global_history_bits],
            pag_histories: vec![0; config.local_history_entries],
            pag_pht: vec![SaturatingCounter::two_bit(); 1 << config.local_history_bits],
            chooser: vec![SaturatingCounter::two_bit(); 1 << config.chooser_bits],
            global_history: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Current global history register value (low bits are most recent).
    pub fn global_history(&self) -> u64 {
        self.global_history
    }

    /// GAg pattern-table index: global history XOR branch PC (the
    /// gshare-style hashing SimpleScalar's two-level predictors use to
    /// reduce interference between opposite-biased branches).
    fn gag_index_with(&self, pc: Addr, history: u64) -> usize {
        ((history ^ pc.word()) as usize) & (self.gag.len() - 1)
    }

    fn chooser_index_with(&self, history: u64) -> usize {
        (history as usize) & (self.chooser.len() - 1)
    }

    fn local_slot(&self, pc: Addr) -> usize {
        (pc.word() as usize) & (self.pag_histories.len() - 1)
    }

    /// PAg pattern-table index: local history XOR branch PC (same
    /// interference-reduction hashing as the global component).
    fn pag_index_for(&self, slot: usize, pc: Addr) -> usize {
        ((self.pag_histories[slot] as u64 ^ pc.word()) as usize) & (self.pag_pht.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `pc` using the
    /// predictor's internal (commit-updated) global history.
    pub fn predict(&self, pc: Addr) -> DirectionPrediction {
        self.predict_with_history(pc, self.global_history)
    }

    /// Predicts with an explicit global-history value. Pipelines that
    /// maintain *speculative* per-path history (updating it at fetch and
    /// repairing it on mispredictions, as SimpleScalar's out-of-order
    /// simulator does) pass their own history here and train with
    /// [`HybridPredictor::train`].
    pub fn predict_with_history(&self, pc: Addr, history: u64) -> DirectionPrediction {
        let gag_index = self.gag_index_with(pc, history);
        let local_slot = self.local_slot(pc);
        let pag_index = self.pag_index_for(local_slot, pc);
        let chooser_index = self.chooser_index_with(history);

        let gag_taken = self.gag[gag_index].is_high();
        let pag_taken = self.pag_pht[pag_index].is_high();
        let chose_gag = self.chooser[chooser_index].is_high();
        let taken = if chose_gag { gag_taken } else { pag_taken };

        DirectionPrediction {
            taken,
            gag_taken,
            pag_taken,
            chose_gag,
            gag_index,
            pag_index,
            chooser_index,
            local_slot,
        }
    }

    /// Trains the predictor with the resolved outcome of a branch whose
    /// prediction-time state was `pred`. Called at commit.
    ///
    /// The chooser trains toward whichever component was correct (and is
    /// left alone when both agree in correctness); the component tables
    /// train toward the outcome; both histories shift in the outcome.
    pub fn update(&mut self, pc: Addr, pred: &DirectionPrediction, taken: bool) {
        self.train(pc, pred, taken);
        self.global_history = (self.global_history << 1) | u64::from(taken);
    }

    /// Trains the counters and the local history with a resolved branch,
    /// without touching the internal global history — for pipelines that
    /// maintain speculative per-path history themselves (see
    /// [`HybridPredictor::predict_with_history`]).
    pub fn train(&mut self, pc: Addr, pred: &DirectionPrediction, taken: bool) {
        // Chooser: strengthen the component that was right when they
        // disagreed in correctness.
        let gag_correct = pred.gag_taken == taken;
        let pag_correct = pred.pag_taken == taken;
        if gag_correct != pag_correct {
            self.chooser[pred.chooser_index].train(gag_correct);
        }
        // Pattern tables.
        self.gag[pred.gag_index].train(taken);
        self.pag_pht[pred.pag_index].train(taken);
        // Local history (per-address; commit-time update).
        let slot = self.local_slot(pc);
        debug_assert_eq!(slot, pred.local_slot);
        self.pag_histories[slot] = (self.pag_histories[slot] << 1) | u32::from(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HybridPredictor {
        HybridPredictor::new(HybridConfig {
            global_history_bits: 6,
            local_history_entries: 16,
            local_history_bits: 6,
            chooser_bits: 6,
        })
    }

    #[test]
    fn default_config_sizes() {
        let p = HybridPredictor::new(HybridConfig::default());
        assert_eq!(p.gag.len(), 4096);
        assert_eq!(p.pag_histories.len(), 1024);
        assert_eq!(p.pag_pht.len(), 1024);
        assert_eq!(p.chooser.len(), 4096);
    }

    #[test]
    fn learns_always_taken() {
        let mut p = small();
        let pc = Addr::new(3);
        for _ in 0..8 {
            let pr = p.predict(pc);
            p.update(pc, &pr, true);
        }
        assert!(p.predict(pc).taken);
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = small();
        let pc = Addr::new(5);
        for _ in 0..8 {
            let pr = p.predict(pc);
            p.update(pc, &pr, false);
        }
        assert!(!p.predict(pc).taken);
    }

    #[test]
    fn local_component_learns_alternation() {
        let mut p = small();
        let pc = Addr::new(9);
        let mut correct = 0;
        for i in 0..400u32 {
            let outcome = i % 2 == 0;
            let pr = p.predict(pc);
            if pr.taken == outcome {
                correct += 1;
            }
            p.update(pc, &pr, outcome);
        }
        assert!(correct > 300, "got {correct}/400");
    }

    #[test]
    fn global_component_learns_correlation() {
        // Branch B's outcome equals branch A's last outcome: only global
        // history can capture this.
        let mut p = small();
        let a = Addr::new(20);
        let b = Addr::new(21);
        let mut correct_b = 0;
        let mut a_outcome = false;
        for i in 0..600u32 {
            // A alternates every 3 iterations (period known via history).
            a_outcome = (i / 3) % 2 == 0;
            let pa = p.predict(a);
            p.update(a, &pa, a_outcome);
            let pb = p.predict(b);
            let b_outcome = a_outcome;
            if i > 200 && pb.taken == b_outcome {
                correct_b += 1;
            }
            p.update(b, &pb, b_outcome);
        }
        assert!(correct_b > 350, "got {correct_b}/399");
        let _ = a_outcome;
    }

    #[test]
    fn history_register_shifts() {
        let mut p = small();
        let pc = Addr::new(1);
        let pr = p.predict(pc);
        p.update(pc, &pr, true);
        let pr = p.predict(pc);
        p.update(pc, &pr, false);
        assert_eq!(p.global_history() & 0b11, 0b10);
    }

    #[test]
    fn update_uses_prediction_time_indices() {
        // Two updates with stale DirectionPrediction values must not panic
        // and must train the recorded indices.
        let mut p = small();
        let pc = Addr::new(2);
        // Predict two branches back-to-back (as a 2-wide fetch would),
        // then update them in order with the recorded state.
        for _ in 0..16 {
            let pr1 = p.predict(pc);
            let pr2 = p.predict(pc);
            p.update(pc, &pr1, true);
            p.update(pc, &pr2, true);
        }
        assert!(p.predict(pc).taken);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_panics() {
        let _ = HybridPredictor::new(HybridConfig {
            local_history_entries: 100,
            ..HybridConfig::default()
        });
    }

    #[test]
    fn config_accessor() {
        let p = small();
        assert_eq!(p.config().global_history_bits, 6);
    }
}
