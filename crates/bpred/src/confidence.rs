//! JRS-style branch-confidence estimation.

use crate::SaturatingCounter;
use hydra_isa::Addr;
use serde::{Deserialize, Serialize};

/// Geometry and threshold of the confidence estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfidenceConfig {
    /// Table entries (power of two).
    pub entries: usize,
    /// Counter width in bits.
    pub counter_bits: u32,
    /// Counter value at or above which a branch is "high confidence".
    pub threshold: u8,
}

impl Default for ConfidenceConfig {
    fn default() -> Self {
        ConfidenceConfig {
            entries: 1024,
            counter_bits: 4,
            threshold: 12,
        }
    }
}

/// A Jacobsen/Rotenberg/Smith miss-distance-counter confidence estimator.
///
/// Each table entry counts consecutive correct predictions for the
/// branches that map to it; a misprediction resets the counter. A branch
/// whose counter is below the threshold is *low confidence* — the
/// multipath core forks on exactly those branches, as the paper's
/// selective-eager-execution policy prescribes.
///
/// # Examples
///
/// ```
/// use hydra_bpred::{ConfidenceConfig, ConfidenceEstimator};
/// use hydra_isa::Addr;
///
/// let mut ce = ConfidenceEstimator::new(ConfidenceConfig::default());
/// let pc = Addr::new(12);
/// assert!(!ce.is_confident(pc)); // cold: low confidence
/// for _ in 0..16 {
///     ce.update(pc, true);
/// }
/// assert!(ce.is_confident(pc));
/// ce.update(pc, false); // one miss resets
/// assert!(!ce.is_confident(pc));
/// ```
#[derive(Debug, Clone)]
pub struct ConfidenceEstimator {
    config: ConfidenceConfig,
    table: Vec<SaturatingCounter>,
}

impl ConfidenceEstimator {
    /// Creates an estimator with all counters at zero (everything low
    /// confidence until proven predictable).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, or the threshold does
    /// not fit in the counter width.
    pub fn new(config: ConfidenceConfig) -> Self {
        assert!(
            config.entries.is_power_of_two(),
            "confidence table entries must be a power of two"
        );
        let probe = SaturatingCounter::new(config.counter_bits, 0);
        assert!(
            config.threshold <= probe.max(),
            "threshold {} exceeds counter max {}",
            config.threshold,
            probe.max()
        );
        ConfidenceEstimator {
            config,
            table: vec![probe; config.entries],
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ConfidenceConfig {
        &self.config
    }

    fn index(&self, pc: Addr) -> usize {
        (pc.word() as usize) & (self.table.len() - 1)
    }

    /// Whether the branch at `pc` is currently high confidence.
    pub fn is_confident(&self, pc: Addr) -> bool {
        self.table[self.index(pc)].value() >= self.config.threshold
    }

    /// Trains with a resolved branch: `correct` is whether the direction
    /// prediction was right. Called at commit.
    pub fn update(&mut self, pc: Addr, correct: bool) {
        let idx = self.index(pc);
        if correct {
            self.table[idx].increment();
        } else {
            self.table[idx].reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ConfidenceEstimator {
        ConfidenceEstimator::new(ConfidenceConfig {
            entries: 16,
            counter_bits: 4,
            threshold: 8,
        })
    }

    #[test]
    fn cold_table_is_low_confidence() {
        let ce = small();
        assert!(!ce.is_confident(Addr::new(0)));
    }

    #[test]
    fn builds_confidence_with_correct_streak() {
        let mut ce = small();
        let pc = Addr::new(5);
        for i in 0..8 {
            assert!(!ce.is_confident(pc), "iteration {i}");
            ce.update(pc, true);
        }
        assert!(ce.is_confident(pc));
    }

    #[test]
    fn miss_resets_confidence() {
        let mut ce = small();
        let pc = Addr::new(5);
        for _ in 0..15 {
            ce.update(pc, true);
        }
        assert!(ce.is_confident(pc));
        ce.update(pc, false);
        assert!(!ce.is_confident(pc));
    }

    #[test]
    fn aliasing_shares_counters() {
        let mut ce = small();
        // 16-entry table: word 1 and word 17 alias.
        for _ in 0..10 {
            ce.update(Addr::new(1), true);
        }
        assert!(ce.is_confident(Addr::new(17)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entries_panics() {
        let _ = ConfidenceEstimator::new(ConfidenceConfig {
            entries: 10,
            ..ConfidenceConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "exceeds counter max")]
    fn threshold_too_large_panics() {
        let _ = ConfidenceEstimator::new(ConfidenceConfig {
            entries: 16,
            counter_bits: 2,
            threshold: 5,
        });
    }

    #[test]
    fn config_accessor() {
        assert_eq!(small().config().threshold, 8);
    }
}
