//! Saturating counters — the primitive of every table-based predictor.

use serde::{Deserialize, Serialize};

/// An n-bit saturating up/down counter (1 ≤ n ≤ 8).
///
/// The classic two-bit counter (Smith, ISCA-8) predicts taken when in the
/// upper half of its range. Wider counters are used by confidence
/// estimators.
///
/// # Examples
///
/// ```
/// use hydra_bpred::SaturatingCounter;
///
/// let mut c = SaturatingCounter::two_bit();
/// assert!(!c.is_high()); // initialized weakly not-taken
/// c.increment();
/// c.increment();
/// assert!(c.is_high());
/// c.increment(); // saturates at 3
/// assert_eq!(c.value(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an `bits`-bit counter starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or if `initial` exceeds
    /// the counter's maximum.
    pub fn new(bits: u32, initial: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// The conventional 2-bit counter initialized to weakly-not-taken (1).
    pub fn two_bit() -> Self {
        SaturatingCounter::new(2, 1)
    }

    /// Current value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum (saturation) value.
    pub fn max(self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets to zero (used by JRS confidence counters on a miss).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Whether the counter is in the upper half of its range — "predict
    /// taken" for direction counters, "choose component 1" for choosers.
    pub fn is_high(self) -> bool {
        u16::from(self.value) * 2 > u16::from(self.max)
    }

    /// Whether the counter is saturated at its maximum — "high confidence"
    /// for JRS counters.
    pub fn is_saturated(self) -> bool {
        self.value == self.max
    }

    /// Trains the counter toward `outcome` (increment if true).
    pub fn train(&mut self, outcome: bool) {
        if outcome {
            self.increment();
        } else {
            self.decrement();
        }
    }
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        SaturatingCounter::two_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SaturatingCounter::two_bit();
        assert_eq!(c.value(), 1);
        assert!(!c.is_high());
        c.increment(); // 2: weakly taken
        assert!(c.is_high());
        c.increment(); // 3
        c.increment(); // saturate
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
        c.decrement(); // 2
        assert!(c.is_high());
        c.decrement(); // 1
        c.decrement(); // 0
        c.decrement(); // saturate at 0
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn train_moves_toward_outcome() {
        let mut c = SaturatingCounter::two_bit();
        c.train(true);
        c.train(true);
        assert!(c.is_high());
        c.train(false);
        c.train(false);
        c.train(false);
        assert!(!c.is_high());
    }

    #[test]
    fn wide_counter_confidence_semantics() {
        let mut c = SaturatingCounter::new(4, 0);
        assert_eq!(c.max(), 15);
        for _ in 0..15 {
            assert!(!c.is_saturated());
            c.increment();
        }
        assert!(c.is_saturated());
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn one_bit_counter() {
        let mut c = SaturatingCounter::new(1, 0);
        assert!(!c.is_high());
        c.increment();
        assert!(c.is_high());
        assert!(c.is_saturated());
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_bits_panics() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn nine_bits_panics() {
        let _ = SaturatingCounter::new(9, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn initial_out_of_range_panics() {
        let _ = SaturatingCounter::new(2, 4);
    }

    #[test]
    fn midpoint_is_not_high() {
        // For a 2-bit counter, value 2 of max 3: 2*2=4 > 3 -> high.
        // For a 3-bit counter, value 4 of max 7: 8 > 7 -> high; value 3 is not.
        let c = SaturatingCounter::new(3, 3);
        assert!(!c.is_high());
        let c = SaturatingCounter::new(3, 4);
        assert!(c.is_high());
    }
}
