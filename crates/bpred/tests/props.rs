//! Property-based tests for the branch-prediction structures.

use hydra_bpred::{
    Btb, BtbConfig, ConfidenceConfig, ConfidenceEstimator, HybridConfig, HybridPredictor,
    SaturatingCounter,
};
use hydra_isa::Addr;
use proptest::prelude::*;

proptest! {
    /// A saturating counter never leaves its range under any op sequence.
    #[test]
    fn counter_stays_in_range(bits in 1u32..9, ops in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SaturatingCounter::new(bits, 0);
        for up in ops {
            c.train(up);
            prop_assert!(c.value() <= c.max());
        }
    }

    /// `is_high` flips exactly at the midpoint.
    #[test]
    fn counter_high_threshold(bits in 1u32..9) {
        let max = ((1u16 << bits) - 1) as u8;
        for v in 0..=max {
            let c = SaturatingCounter::new(bits, v);
            prop_assert_eq!(c.is_high(), u16::from(v) * 2 > u16::from(max));
        }
    }

    /// Training any branch on a constant outcome converges: after enough
    /// updates, the hybrid predicts that outcome.
    #[test]
    fn hybrid_converges_on_biased_branch(pc in 0u64..10_000, outcome in any::<bool>()) {
        let mut p = HybridPredictor::new(HybridConfig::default());
        let pc = Addr::new(pc);
        for _ in 0..32 {
            let pred = p.predict(pc);
            p.update(pc, &pred, outcome);
        }
        prop_assert_eq!(p.predict(pc).taken, outcome);
    }

    /// Prediction is pure: repeated predicts without updates agree.
    #[test]
    fn prediction_is_pure(pc in 0u64..10_000, history in any::<u64>()) {
        let p = HybridPredictor::new(HybridConfig::default());
        let pc = Addr::new(pc);
        let a = p.predict_with_history(pc, history);
        let b = p.predict_with_history(pc, history);
        prop_assert_eq!(a, b);
    }

    /// A BTB update is immediately visible, and a set never holds more
    /// entries than its associativity.
    #[test]
    fn btb_update_then_hit(
        pcs in prop::collection::vec(0u64..4096, 1..100),
        ways in 1usize..8,
    ) {
        let mut btb = Btb::new(BtbConfig { sets: 16, ways });
        for (i, &pc) in pcs.iter().enumerate() {
            let target = Addr::new(i as u64 + 1);
            btb.update(Addr::new(pc), target);
            prop_assert_eq!(btb.peek(Addr::new(pc)), Some(target));
        }
        // Thrash one set with more distinct tags than ways: the most
        // recent update always survives.
        let set_stride = 16u64;
        for i in 0..(ways as u64 + 3) {
            btb.update(Addr::new(i * set_stride), Addr::new(7777 + i));
        }
        let last = (ways as u64 + 2) * set_stride;
        prop_assert_eq!(btb.peek(Addr::new(last)), Some(Addr::new(7777 + ways as u64 + 2)));
    }

    /// The confidence estimator is never confident immediately after a
    /// miss, and becomes confident after `threshold` consecutive hits.
    #[test]
    fn confidence_reset_and_build(pc in 0u64..100_000, threshold in 1u8..15) {
        let mut ce = ConfidenceEstimator::new(ConfidenceConfig {
            entries: 256,
            counter_bits: 4,
            threshold,
        });
        let pc = Addr::new(pc);
        for _ in 0..threshold {
            ce.update(pc, true);
        }
        prop_assert!(ce.is_confident(pc));
        ce.update(pc, false);
        prop_assert!(!ce.is_confident(pc));
    }

    /// Local (PAg) history learns any short periodic pattern closely.
    #[test]
    fn hybrid_learns_short_periods(period in 2usize..6, pc in 0u64..1000) {
        let mut p = HybridPredictor::new(HybridConfig::default());
        let pc = Addr::new(pc);
        let mut correct = 0u32;
        let total = 600u32;
        for i in 0..total {
            let outcome = (i as usize).is_multiple_of(period);
            let pred = p.predict(pc);
            if pred.taken == outcome && i > 100 {
                correct += 1;
            }
            p.update(pc, &pred, outcome);
        }
        prop_assert!(correct * 100 / (total - 101) > 85, "{correct}/{}", total - 101);
    }
}
