#!/usr/bin/env python3
"""Splice measured experiment artifacts into EXPERIMENTS.md.

Reads expt_full_output.txt (the output of `expt_all` followed by
`expt_fig_jourdan` and `expt_fig_seeds`) and replaces the <<PLACEHOLDER>>
markers in EXPERIMENTS.md with the corresponding rendered tables.
"""

import re
import sys

MARKERS = {
    "<<TABLE1>>": "Table 1: baseline machine model",
    "<<TABLE2>>": "Table 2: benchmark characteristics",
    "<<TABLE4>>": "Table 4: return prediction from the BTB",
    "<<FIGREPAIR>>": "Figure (repair):",
    "<<FIGSPEEDUP>>": "Figure (speedup):",
    "<<FIGDEPTH>>": "Figure (depth):",
    "<<FIGBUDGET>>": "Figure (budget):",
    "<<FIGMULTIPATH>>": "Figure (multipath):",
    "<<FIGTOPK>>": "Ablation (top-k):",
    "<<FIGANALYTICAL>>": "Ablation (analytical):",
    "<<FIGFRONTEND>>": "Ablation (front end):",
    "<<FIGJOURDAN>>": "Extension (Jourdan):",
    "<<FIGSMT>>": "Extension (SMT):",
    "<<FIGSEEDS>>": "Robustness: repair comparison",
}


def extract_artifacts(text: str) -> dict:
    """Split the experiment output into title-keyed blocks."""
    blocks = {}
    current_title = None
    current: list[str] = []
    for line in text.splitlines():
        is_title = any(line.startswith(t.split(":")[0]) and t.split(":")[0] for t in [])
        # A new artifact starts at a line beginning with a known prefix.
        started = None
        for marker, prefix in MARKERS.items():
            if line.startswith(prefix):
                started = marker
                break
        if started:
            if current_title:
                blocks[current_title] = "\n".join(current).rstrip()
            current_title = started
            current = [line]
        elif current_title is not None:
            if line.strip() == "" and current and current[-1].strip() == "":
                continue
            current.append(line)
    if current_title:
        blocks[current_title] = "\n".join(current).rstrip()
    return blocks


def main() -> int:
    out = open("expt_full_output.txt").read()
    doc = open("EXPERIMENTS.md").read()
    blocks = extract_artifacts(out)
    missing = []
    for marker in MARKERS:
        if marker not in doc:
            continue
        if marker in blocks:
            doc = doc.replace(marker, blocks[marker])
        else:
            missing.append(marker)
    open("EXPERIMENTS.md", "w").write(doc)
    if missing:
        print(f"WARNING: no data found for {missing}", file=sys.stderr)
        return 1
    leftovers = re.findall(r"<<[A-Z0-9]+>>", doc)
    if leftovers:
        print(f"WARNING: unspliced markers remain: {leftovers}", file=sys.stderr)
        return 1
    print("EXPERIMENTS.md spliced")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
