#!/bin/bash
# Runs the experiments added after the main suite was launched.
while pgrep -x expt_all > /dev/null; do sleep 15; done
cd /root/repo
target/release/expt_fig_jourdan >> expt_full_output.txt 2>> expt_full_err.txt
target/release/expt_fig_seeds >> expt_full_output.txt 2>> expt_full_err.txt
echo "EXTRA DONE" >> expt_full_err.txt
