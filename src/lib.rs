//! HydraScalar reproduction — return-address-stack repair mechanisms.
//!
//! This is the facade crate of a from-scratch Rust reproduction of
//! *"Improving Prediction for Procedure Returns with Return-Address-Stack
//! Repair Mechanisms"* (Skadron, Ahuja, Martonosi, Clark — MICRO-31,
//! 1998). It re-exports the workspace's crates:
//!
//! * [`ras`] (`ras-core`) — the paper's contribution: the return-address
//!   stack and its repair mechanisms;
//! * [`isa`] (`hydra-isa`) — the MIPS-like virtual ISA, program builder,
//!   and functional emulator;
//! * [`bpred`] (`hydra-bpred`) — hybrid direction predictor, BTB,
//!   confidence estimation;
//! * [`mem`] (`hydra-mem`) — the two-level cache hierarchy;
//! * [`pipeline`] (`hydra-pipeline`) — the cycle-level out-of-order core
//!   with wrong-path execution and multipath forking, plus the
//!   multi-instance [`System`] (SMT / multi-core with a shared,
//!   partitioned, or tagged RAS);
//! * [`workloads`] (`hydra-workloads`) — the SPECint95-like synthetic
//!   benchmark suite;
//! * [`stats`] (`hydra-stats`) — counters and report tables;
//! * [`trace`] (`hydra-trace`) — zero-cost-when-off event tracing,
//!   metrics, and the leveled stderr logger (enable recording with the
//!   `trace` cargo feature);
//! * [`bench`] (`hydra-bench`) — the experiment harness behind the
//!   `expt` binary: every table and figure of the paper as a registered
//!   experiment, plus the typed programmatic API ([`Request`] /
//!   [`Response`]);
//! * [`serve`] (`hydra-serve`) — the HTTP/1.1 simulation server behind
//!   `expt serve`: content-addressed result cache, request coalescing,
//!   and a bounded compute queue with backpressure.
//!
//! The most commonly used types are also re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use hydrascalar::{Core, CoreConfig, ReturnPredictor, Workload, WorkloadSpec};
//! use hydrascalar::ras::RepairPolicy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a benchmark and run it on two machines: an unrepaired
//! // stack and the paper's TOS-pointer+contents repair. Configurations
//! // are assembled with [`CoreConfig::builder`]; any field left unset
//! // keeps the paper's baseline value.
//! let workload = Workload::generate(&WorkloadSpec::test_small(), 42)?;
//!
//! let ras = |repair| {
//!     CoreConfig::builder()
//!         .return_predictor(ReturnPredictor::Ras { entries: 32, repair })
//!         .build()
//! };
//!
//! let broken = Core::new(ras(RepairPolicy::None), workload.program()).run(50_000);
//! let repaired = Core::new(ras(RepairPolicy::TosPointerAndContents), workload.program())
//!     .run(50_000);
//!
//! assert!(repaired.return_hit_rate().value() >= broken.return_hit_rate().value());
//! # Ok(())
//! # }
//! ```
//!
//! # Multi-instance machines (SMT / multi-core)
//!
//! A [`Core`] is one hardware thread. To model several, build a
//! [`System`]: N cores × M harts per core, sharing one memory hierarchy,
//! with each core's return-address stack run in one of three
//! [`RasSharing`] modes (`Shared`, `Partitioned`, or `Tagged`). A 1×1
//! `System` is bit-exact with a plain `Core`.
//!
//! ```
//! use hydrascalar::{CoreConfig, RasSharing, System, Workload, WorkloadSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two harts on one core, each running its own workload, with the
//! // 32-entry RAS statically partitioned between them.
//! let a = Workload::generate(&WorkloadSpec::test_small(), 1)?;
//! let b = Workload::generate(&WorkloadSpec::test_small(), 2)?;
//!
//! let config = CoreConfig::builder()
//!     .harts(2)
//!     .ras_sharing(RasSharing::Partitioned)
//!     .build();
//! let mut system = System::new(1, config, &[a.program(), b.program()]);
//!
//! let stats = system.run(20_000); // per-hart commit target
//! assert_eq!(stats.len(), 2);
//! for s in &stats {
//!     assert!(s.committed >= 20_000);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Programmatic experiment API
//!
//! The paper's tables and figures are registered experiments, runnable
//! in-process through a schema-versioned [`Request`] / [`Response`]
//! pair. A request is a pure value — (experiment name, run spec) — and
//! because the simulator is deterministic, the response is a pure
//! function of it; [`Request::cache_key`] is the content address that
//! `expt serve` caches results under.
//!
//! ```
//! use hydrascalar::bench::api::handle;
//! use hydrascalar::bench::RunSpec;
//! use hydrascalar::{Request, Response};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let run = RunSpec::builder().seed(7).fast_forward(200).horizon(2_000).build();
//! let request = Request::new("table1", run);
//!
//! // Run the experiment in-process (one worker is plenty here) and get
//! // back the same result document `expt` writes and `expt serve`
//! // serves.
//! let response = handle(&request, 1)?;
//! assert_eq!(response.experiment, "table1");
//! assert!(!response.title.is_empty());
//!
//! // The document round-trips losslessly, and the content address is a
//! // stable function of the request value.
//! assert_eq!(Response::from_json(&response.to_json()), Ok(response));
//! assert_eq!(request.cache_key(), Request::new("table1", run).cache_key());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hydra_bench as bench;
pub use hydra_bpred as bpred;
pub use hydra_isa as isa;
pub use hydra_mem as mem;
pub use hydra_pipeline as pipeline;
pub use hydra_serve as serve;
pub use hydra_stats as stats;
pub use hydra_trace as trace;
pub use hydra_workloads as workloads;
pub use ras_core as ras;

pub use hydra_bench::{Request, Response, RunSpec};
pub use hydra_isa::{Addr, FastCore, FunctionalCore, Inst, Machine, Program, ProgramBuilder, Reg};
pub use hydra_pipeline::{
    Core, CoreConfig, CoreConfigBuilder, CoreHandle, HartId, MultipathConfig, RasSharing,
    ReturnPredictor, SimStats, System,
};
pub use hydra_stats::Json;
pub use hydra_workloads::{DynamicProfile, Workload, WorkloadSpec};
pub use ras_core::{MultipathStackPolicy, RepairPolicy, ReturnAddressStack};
