//! `hydrasim` — command-line driver for the HydraScalar reproduction.
//!
//! Runs one workload on one machine configuration and reports the
//! statistics the paper's evaluation reports.
//!
//! ```sh
//! hydrasim --workload gcc --instructions 1000000
//! hydrasim --workload li --repair none --ras-entries 8
//! hydrasim --workload vortex --multipath 2 --stack per-path
//! hydrasim --workload perl --return-predictor btb
//! hydrasim --list-workloads
//! ```

use hydrascalar::ras::{MultipathStackPolicy, RepairPolicy};
use hydrascalar::trace::{EventMask, TraceConfig, TraceSession};
use hydrascalar::{Core, CoreConfig, DynamicProfile, ReturnPredictor, Workload, WorkloadSpec};
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    workload: String,
    seed: u64,
    warmup: u64,
    instructions: u64,
    predictor: PredictorChoice,
    ras_entries: usize,
    budget: Option<usize>,
    multipath: Option<usize>,
    stack: StackChoice,
    profile: bool,
    golden: bool,
    json: bool,
    list: bool,
    trace: Option<PathBuf>,
    trace_filter: EventMask,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredictorChoice {
    Ras(RepairPolicy),
    SelfCheckpointing,
    BtbOnly,
    Perfect,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StackChoice {
    Unified,
    UnifiedCkpt,
    PerPath,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: "gcc".to_string(),
            seed: 12345,
            warmup: 100_000,
            instructions: 1_000_000,
            predictor: PredictorChoice::Ras(RepairPolicy::TosPointerAndContents),
            ras_entries: 32,
            budget: None,
            multipath: None,
            stack: StackChoice::PerPath,
            profile: false,
            golden: false,
            json: false,
            list: false,
            trace: None,
            trace_filter: EventMask::all(),
        }
    }
}

const USAGE: &str = "\
hydrasim — cycle-level simulation of return-address-stack repair

USAGE:
    hydrasim [OPTIONS]

OPTIONS:
    --workload NAME          benchmark to run (default: gcc); see --list-workloads
    --seed N                 workload generation seed (default: 12345)
    --warmup N               committed instructions before measurement (default: 100000)
    --instructions N         committed instructions to measure (default: 1000000)
    --return-predictor KIND  ras | self-ckpt | btb | perfect (default: ras)
    --repair POLICY          none | valid-bits | tos-pointer | tos-pointer-contents |
                             top-K (e.g. top-4) | full   (default: tos-pointer-contents)
    --ras-entries N          stack capacity (default: 32)
    --budget N               shadow-checkpoint budget (default: unlimited)
    --multipath N            fork at low-confidence branches, N path contexts
    --stack ORG              unified | unified-ckpt | per-path (default: per-path)
    --profile                also print the workload's architectural profile
    --golden                 lockstep-check every commit against the interpreter
    --json                   report statistics as a JSON document (stable field names)
    --trace FILE             write a Chrome trace of the run to FILE (plus FILE.ndjson
                             and FILE.ras.txt); needs a build with the `trace` feature
    --trace-filter KINDS     comma-separated event classes to record:
                             ras,branch,squash,stage,cache,engine (default: all)
    --list-workloads         list available benchmarks and exit
    --help                   show this help
";

/// Parses a repair-policy name.
fn parse_repair(s: &str) -> Result<RepairPolicy, String> {
    match s {
        "none" => Ok(RepairPolicy::None),
        "valid-bits" => Ok(RepairPolicy::ValidBits),
        "tos-pointer" => Ok(RepairPolicy::TosPointer),
        "tos-pointer-contents" => Ok(RepairPolicy::TosPointerAndContents),
        "full" => Ok(RepairPolicy::FullStack),
        other => match other.strip_prefix("top-") {
            Some(k) => {
                let k: usize = k
                    .parse()
                    .map_err(|_| format!("bad top-k repair `{other}`"))?;
                Ok(RepairPolicy::TopContents { k })
            }
            None => Err(format!("unknown repair policy `{other}`")),
        },
    }
}

/// Parses the argument list (without the program name).
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut repair = RepairPolicy::TosPointerAndContents;
    let mut predictor_kind = "ras".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--workload" => o.workload = value("--workload")?,
            "--seed" => {
                o.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--warmup" => {
                o.warmup = value("--warmup")?
                    .parse()
                    .map_err(|_| "bad --warmup".to_string())?
            }
            "--instructions" => {
                o.instructions = value("--instructions")?
                    .parse()
                    .map_err(|_| "bad --instructions".to_string())?
            }
            "--return-predictor" => predictor_kind = value("--return-predictor")?,
            "--repair" => repair = parse_repair(&value("--repair")?)?,
            "--ras-entries" => {
                o.ras_entries = value("--ras-entries")?
                    .parse()
                    .map_err(|_| "bad --ras-entries".to_string())?
            }
            "--budget" => {
                o.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|_| "bad --budget".to_string())?,
                )
            }
            "--multipath" => {
                o.multipath = Some(
                    value("--multipath")?
                        .parse()
                        .map_err(|_| "bad --multipath".to_string())?,
                )
            }
            "--stack" => {
                o.stack = match value("--stack")?.as_str() {
                    "unified" => StackChoice::Unified,
                    "unified-ckpt" => StackChoice::UnifiedCkpt,
                    "per-path" => StackChoice::PerPath,
                    other => return Err(format!("unknown stack organization `{other}`")),
                }
            }
            "--profile" => o.profile = true,
            "--golden" => o.golden = true,
            "--json" => o.json = true,
            "--trace" => o.trace = Some(PathBuf::from(value("--trace")?)),
            "--trace-filter" => o.trace_filter = EventMask::parse(&value("--trace-filter")?)?,
            "--list-workloads" => o.list = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    o.predictor = match predictor_kind.as_str() {
        "ras" => PredictorChoice::Ras(repair),
        "self-ckpt" => PredictorChoice::SelfCheckpointing,
        "btb" => PredictorChoice::BtbOnly,
        "perfect" => PredictorChoice::Perfect,
        other => return Err(format!("unknown return predictor `{other}`")),
    };
    Ok(o)
}

/// Builds the machine configuration from options.
fn build_config(o: &Options) -> CoreConfig {
    let return_predictor = match o.predictor {
        PredictorChoice::Ras(repair) => ReturnPredictor::Ras {
            entries: o.ras_entries,
            repair,
        },
        PredictorChoice::SelfCheckpointing => ReturnPredictor::SelfCheckpointing {
            entries: o.ras_entries,
        },
        PredictorChoice::BtbOnly => ReturnPredictor::BtbOnly,
        PredictorChoice::Perfect => ReturnPredictor::Perfect,
    };
    let multipath = o.multipath.map(|paths| {
        let stack_policy = match o.stack {
            StackChoice::Unified => MultipathStackPolicy::Unified {
                repair: RepairPolicy::None,
            },
            StackChoice::UnifiedCkpt => MultipathStackPolicy::Unified {
                repair: RepairPolicy::TosPointerAndContents,
            },
            StackChoice::PerPath => MultipathStackPolicy::PerPath,
        };
        hydrascalar::MultipathConfig {
            max_paths: paths,
            stack_policy,
        }
    });
    CoreConfig::builder()
        .return_predictor(return_predictor)
        .checkpoint_budget(o.budget)
        .multipath(multipath)
        .build()
}

fn run(o: &Options) -> Result<(), String> {
    if o.list {
        println!("available workloads:");
        for spec in WorkloadSpec::spec95_suite() {
            println!("  {}", spec.name);
        }
        println!("  test-small (via the library API)");
        return Ok(());
    }

    let spec = WorkloadSpec::by_name(&o.workload)
        .ok_or_else(|| format!("unknown workload `{}`; try --list-workloads", o.workload))?;
    let workload =
        Workload::generate(&spec, o.seed).map_err(|e| format!("generation failed: {e}"))?;

    if o.profile {
        let p = DynamicProfile::measure(&workload, o.warmup + o.instructions);
        println!("profile: {p}");
    }

    let config = build_config(o);
    let mut core = Core::new(config, workload.program());
    if o.golden {
        core.enable_golden_check();
    }
    let session = match &o.trace {
        Some(_) if !hydrascalar::trace::COMPILED => {
            return Err("--trace requires the `trace` feature; rebuild with \
                 `cargo build --release --features trace`"
                .into());
        }
        Some(_) => Some(
            TraceSession::start(TraceConfig {
                mask: o.trace_filter,
                ..TraceConfig::default()
            })
            .map_err(|e| format!("--trace: {e}"))?,
        ),
        None => None,
    };
    let t0 = std::time::Instant::now();
    core.run(o.warmup);
    core.reset_stats();
    let stats = core.run(o.instructions);
    let elapsed = t0.elapsed();
    if let (Some(session), Some(path)) = (session, &o.trace) {
        write_trace(&session.finish(), path)?;
    }

    if o.json {
        // Machine-readable report: the raw counters under their stable
        // serialization names (SimStats::named_counters) plus run
        // identity; wall_ms carries the timing suffix so the golden
        // differ knows it is not a result field.
        let doc = hydrascalar::Json::obj([
            ("workload", hydrascalar::Json::str(&o.workload)),
            ("seed", hydrascalar::Json::int(o.seed)),
            ("stats", stats.to_json()),
            (
                "wall_ms",
                hydrascalar::Json::num(elapsed.as_secs_f64() * 1e3),
            ),
        ]);
        print!("{}", doc.pretty());
        return Ok(());
    }

    println!("workload            : {} (seed {})", o.workload, o.seed);
    println!("committed           : {}", stats.committed);
    println!("cycles              : {}", stats.cycles);
    println!("IPC                 : {:.4}", stats.ipc());
    println!("branch accuracy     : {}", stats.branch_accuracy());
    println!(
        "returns             : {} ({} hits, rate {})",
        stats.returns,
        stats.return_hits,
        stats.return_hit_rate()
    );
    println!(
        "RAS                 : {} pushes, {} pops, {} overflows, {} underflows, {} repairs",
        stats.ras_pushes,
        stats.ras_pops,
        stats.ras_overflows,
        stats.ras_underflows,
        stats.ras_restores
    );
    if stats.checkpoint_budget_misses > 0 {
        println!("budget misses       : {}", stats.checkpoint_budget_misses);
    }
    if o.multipath.is_some() {
        println!(
            "multipath           : {} forks, {} peak live paths",
            stats.forks, stats.max_live_paths
        );
    }
    println!(
        "wrong-path activity : {} of {} fetched uops squashed ({})",
        stats.squashed_uops,
        stats.fetched_uops,
        stats.squash_fraction()
    );
    let occ = core.occupancy();
    println!(
        "occupancy (mean)    : RUU {:.1}/{}, LSQ {:.1}/{}, fetchq {:.1}/{}",
        occ.ruu.mean(),
        core.config().ruu_size,
        occ.lsq.mean(),
        core.config().lsq_size,
        occ.fetch_queue.mean(),
        core.config().fetch_queue,
    );
    println!(
        "simulation speed    : {:.0} commits/sec",
        stats.committed as f64 / elapsed.as_secs_f64()
    );
    Ok(())
}

/// Writes the Chrome trace at `path`, the NDJSON event stream at
/// `path.ndjson`, and the RAS timeline at `path.ras.txt`.
fn write_trace(trace: &hydrascalar::trace::Trace, path: &std::path::Path) -> Result<(), String> {
    let write = |p: &std::path::Path, contents: String| {
        std::fs::write(p, contents).map_err(|io| format!("writing {}: {io}", p.display()))
    };
    write(path, trace.to_chrome_json().to_string())?;
    let mut buf = Vec::new();
    trace
        .write_ndjson(&mut buf)
        .map_err(|io| format!("serialising event stream: {io}"))?;
    write(
        &path.with_extension("ndjson"),
        String::from_utf8(buf).expect("ndjson output is UTF-8"),
    )?;
    write(&path.with_extension("ras.txt"), trace.ras_timeline())?;
    eprintln!(
        "trace: {} event(s), {} dropped -> {}",
        trace.events.len(),
        trace.dropped,
        path.display()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(o) => {
            if let Err(e) = run(&o) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn full_single_path_line() {
        let o = parse(&[
            "--workload",
            "li",
            "--seed",
            "7",
            "--instructions",
            "5000",
            "--repair",
            "tos-pointer",
            "--ras-entries",
            "8",
            "--budget",
            "4",
        ])
        .unwrap();
        assert_eq!(o.workload, "li");
        assert_eq!(o.seed, 7);
        assert_eq!(o.instructions, 5_000);
        assert_eq!(o.predictor, PredictorChoice::Ras(RepairPolicy::TosPointer));
        assert_eq!(o.ras_entries, 8);
        assert_eq!(o.budget, Some(4));
    }

    #[test]
    fn multipath_line() {
        let o = parse(&["--multipath", "4", "--stack", "unified-ckpt"]).unwrap();
        assert_eq!(o.multipath, Some(4));
        assert_eq!(o.stack, StackChoice::UnifiedCkpt);
        let cfg = build_config(&o);
        assert_eq!(cfg.multipath.unwrap().max_paths, 4);
    }

    #[test]
    fn top_k_repair_parses() {
        assert_eq!(
            parse_repair("top-4").unwrap(),
            RepairPolicy::TopContents { k: 4 }
        );
        assert!(parse_repair("top-x").is_err());
        assert!(parse_repair("bogus").is_err());
    }

    #[test]
    fn predictor_kinds() {
        let o = parse(&["--return-predictor", "btb"]).unwrap();
        assert_eq!(o.predictor, PredictorChoice::BtbOnly);
        let o = parse(&["--return-predictor", "perfect"]).unwrap();
        assert_eq!(o.predictor, PredictorChoice::Perfect);
        assert!(parse(&["--return-predictor", "psychic"]).is_err());
    }

    #[test]
    fn bad_inputs_are_errors() {
        assert!(parse(&["--instructions"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
        assert!(parse(&["--stack", "spaghetti"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn help_returns_usage() {
        let err = parse(&["--help"]).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn flags_toggle() {
        let o = parse(&["--profile", "--golden", "--list-workloads"]).unwrap();
        assert!(o.profile && o.golden && o.list);
    }

    #[test]
    fn trace_flags_parse() {
        let o = parse(&["--trace", "out.json", "--trace-filter", "ras,branch"]).unwrap();
        assert_eq!(o.trace, Some(PathBuf::from("out.json")));
        assert!(o.trace_filter != EventMask::all());
        assert!(parse(&["--trace-filter", "bogus"]).is_err());
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn config_for_btb_only() {
        let o = parse(&["--return-predictor", "btb"]).unwrap();
        assert_eq!(build_config(&o).return_predictor, ReturnPredictor::BtbOnly);
    }

    #[test]
    fn end_to_end_tiny_run() {
        // Exercise the whole driver path on a tiny run.
        let o = parse(&[
            "--workload",
            "compress",
            "--warmup",
            "1000",
            "--instructions",
            "5000",
            "--golden",
        ])
        .unwrap();
        run(&o).unwrap();
    }
}
