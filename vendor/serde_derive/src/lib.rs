//! No-op `Serialize`/`Deserialize` derives for offline builds.
//!
//! Nothing in this workspace serializes at runtime — the derives exist so
//! type definitions stay source-compatible with the real `serde`. Each
//! derive expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
