//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! Implements the [`proptest!`] macro family over a deterministic
//! fixed-seed runner: each test function derives its RNG seed from its
//! own name, runs `ProptestConfig::cases` random cases, and on failure
//! panics with the case index and the generated inputs. There is **no
//! shrinking** — the printed inputs are the raw failing case.
//!
//! Supported strategy surface (all this repository's tests need):
//! integer and `f64` range strategies, [`Just`], tuples up to arity 12,
//! [`Strategy::prop_map`], [`collection::vec`], [`prop_oneof!`], and
//! [`any`] for `bool`/integer types. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every run of a given test
    /// sees the same case sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a test case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; the cycle-level simulator tests here
        // are comparatively expensive, so the stub trims the default.
        ProptestConfig { cases: 48 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`, each equally likely.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy for the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (`any::<i64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]; convertible from usize ranges or a
    /// fixed usize.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing vectors of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — the `prop::collection::vec` entry
    /// point.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.index(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests; see the crate docs for supported syntax
/// (`fn name(arg in strategy, ...) { body }` with an optional leading
/// `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("[case {case}] {msg}\n    inputs: {inputs}");
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Toggle {
        On(u64),
        Off,
    }

    fn toggles() -> impl Strategy<Value = Vec<Toggle>> {
        prop::collection::vec(
            prop_oneof![(1u64..10).prop_map(Toggle::On), Just(Toggle::Off)],
            0..16,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -4i64..=4, f in 0.0f64..0.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.0..0.5).contains(&f));
        }

        #[test]
        fn vec_lengths_in_bounds(v in toggles()) {
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn tuples_and_map(pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((11..25).contains(&pair));
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    use crate::TestRng;
}
