//! Offline stand-in for `serde`: re-exports the no-op derives.
//!
//! The workspace only ever writes `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Deserialize, Serialize};` — it never calls serialization
//! at runtime — so re-exporting the inert derive macros is the entire
//! required surface. See `vendor/README.md`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
