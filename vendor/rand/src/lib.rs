//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`rngs::StdRng`] (a SplitMix64 generator — *not* the real
//! `StdRng`'s ChaCha stream, but just as deterministic for a given seed),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`. See `vendor/README.md` for scope.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding constructor, matching the `rand::SeedableRng` method the
/// workspace calls.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The generator methods this workspace uses.
pub trait Rng {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` (integers uniform over the full domain,
    /// `f64` uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12), this is a tiny
    /// splittable mix function — statistically fine for workload
    /// synthesis, identical stream for identical seed on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = r.gen_range(-64..=64);
            assert!((-64..=64).contains(&w));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
