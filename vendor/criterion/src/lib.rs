//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses: groups, `bench_function`, `Bencher::{iter, iter_batched}`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling, each benchmark runs a
//! short warm-up, then a fixed batch of iterations, and prints the mean
//! wall time per iteration. Good enough to exercise the code paths and
//! give a ballpark number without any external dependencies. See
//! `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Runs benchmark closures and reports per-iteration mean times.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group; benchmarks print as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks `f` directly under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration batch size for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
        performed: 0,
    };
    // One warm-up pass, then the measured pass.
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.performed = 0;
    f(&mut b);
    let per_iter = if b.performed > 0 {
        b.elapsed / b.performed as u32
    } else {
        Duration::ZERO
    };
    println!("bench {label}: {per_iter:?}/iter ({} iters)", b.performed);
}

/// Timing harness passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    performed: u64,
}

impl Bencher {
    /// Times `routine` over a fixed batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.performed += self.iters;
    }

    /// Times `routine` with a fresh `setup()` input per iteration;
    /// setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.performed += self.iters;
    }
}

/// Bundles benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        let mut ran = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| ran += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(ran, 2 * 5 * 2); // warm-up + measured pass
    }
}
